package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds instruments under unique hierarchical names. The
// name table is mutex-guarded because registration can happen from
// concurrent shard workers (a transport connection registers its
// scope when the SYN arrives, and two shards may accept connections
// inside the same lookahead window). The instruments themselves stay
// lock-free: each has a single writer (its owning node's shard), and
// snapshots are only taken while the workers are quiescent.
type Registry struct {
	mu     sync.Mutex
	byName map[string]Instrument
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]Instrument)}
}

// Register adopts an existing instrument under name. The name must be
// non-empty and unused; collisions panic because they are wiring bugs
// (two components claiming the same identity), not runtime conditions.
func (r *Registry) Register(name string, in Instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, in)
}

func (r *Registry) register(name string, in Instrument) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if in == nil {
		panic(fmt.Sprintf("metrics: nil instrument for %q", name))
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.byName[name] = in
}

// Counter returns the counter registered under name, creating one if
// absent. It panics if name is held by a different instrument kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byName[name]; ok {
		c, isC := in.(*Counter)
		if !isC {
			panic(fmt.Sprintf("metrics: %q is not a counter", name))
		}
		return c
	}
	c := &Counter{}
	r.register(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating one if
// absent. It panics if name is held by a different instrument kind.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byName[name]; ok {
		g, isG := in.(*Gauge)
		if !isG {
			panic(fmt.Sprintf("metrics: %q is not a gauge", name))
		}
		return g
	}
	g := &Gauge{}
	r.register(name, g)
	return g
}

// Histogram returns the histogram registered under name, creating one
// with the given bounds if absent.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byName[name]; ok {
		h, isH := in.(*Histogram)
		if !isH {
			panic(fmt.Sprintf("metrics: %q is not a histogram", name))
		}
		return h
	}
	h := NewHistogram(bounds...)
	r.register(name, h)
	return h
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byName)
}

// Scope returns a scope that prefixes names with prefix + "/".
func (r *Registry) Scope(prefix string) *Scope {
	return &Scope{reg: r, prefix: prefix}
}

// Snapshot captures every instrument as plain data, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	s := Snapshot{Samples: make([]Sample, 0, len(names))}
	for _, n := range names {
		s.Samples = append(s.Samples, r.byName[n].sample(n))
	}
	return s
}

// SourceName implements Source.
func (r *Registry) SourceName() string { return "metrics" }

// ReportJSON implements Source.
func (r *Registry) ReportJSON() any { return r.Snapshot() }

// ReportText implements Source.
func (r *Registry) ReportText() string { return r.Snapshot().Text() }

// Scope is a named subtree of a registry. A nil *Scope is valid and
// inert: Register is a no-op and the getters hand back detached
// instruments, so components instrument themselves unconditionally and
// work identically with or without a registry attached.
type Scope struct {
	reg    *Registry
	prefix string
}

// Join concatenates name parts with "/", skipping empty parts.
func Join(parts ...string) string {
	kept := parts[:0:0]
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, "/")
}

// Sub returns a child scope one level down.
func (s *Scope) Sub(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, prefix: Join(s.prefix, name)}
}

// Register adopts in under the scope's prefix. No-op on a nil scope.
func (s *Scope) Register(name string, in Instrument) {
	if s == nil {
		return
	}
	s.reg.Register(Join(s.prefix, name), in)
}

// Counter returns (creating if needed) a counter in this scope, or a
// detached counter on a nil scope.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return &Counter{}
	}
	return s.reg.Counter(Join(s.prefix, name))
}

// Gauge returns (creating if needed) a gauge in this scope, or a
// detached gauge on a nil scope.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return &Gauge{}
	}
	return s.reg.Gauge(Join(s.prefix, name))
}

// Histogram returns (creating if needed) a histogram in this scope, or
// a detached one on a nil scope.
func (s *Scope) Histogram(name string, bounds ...int64) *Histogram {
	if s == nil {
		return NewHistogram(bounds...)
	}
	return s.reg.Histogram(Join(s.prefix, name), bounds...)
}
