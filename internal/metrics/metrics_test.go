package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeZeroValue(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5122 {
		t.Fatalf("count=%d sum=%d, want 5, 5122", h.Count(), h.Sum())
	}
	s := h.sample("h")
	want := []Bucket{{Le: 10, N: 2}, {Le: 100, N: 2}, {Le: -1, N: 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestRegistryAdoptionAndSnapshotOrder(t *testing.T) {
	reg := New()
	var sent, lost Counter
	sc := reg.Scope("n1").Sub("link0")
	sc.Register("sent", &sent)
	sc.Register("lost", &lost)
	sent.Add(3) // increments through the original field reach the registry
	snap := reg.Snapshot()
	names := []string{snap.Samples[0].Name, snap.Samples[1].Name}
	if names[0] != "n1/link0/lost" || names[1] != "n1/link0/sent" {
		t.Fatalf("snapshot order = %v, want name-sorted", names)
	}
	if snap.Value("n1/link0/sent") != 3 {
		t.Fatalf("sent = %d, want 3", snap.Value("n1/link0/sent"))
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	reg := New()
	var a, b Counter
	reg.Register("x", &a)
	reg.Register("x", &b)
}

func TestNilScopeIsInert(t *testing.T) {
	var sc *Scope
	sc.Sub("a").Register("b", &Counter{}) // must not panic
	c := sc.Counter("detached")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter should still count")
	}
	h := sc.Histogram("h", 1, 2)
	h.Observe(1)
	if h.Count() != 1 {
		t.Fatal("detached histogram should still observe")
	}
}

func TestSnapshotDiff(t *testing.T) {
	reg := New()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", 10, 100)
	c.Add(2)
	g.Set(5)
	h.Observe(3)
	before := reg.Snapshot()
	c.Add(3)
	g.Set(9)
	h.Observe(50)
	d := reg.Snapshot().Diff(before)
	if d.Value("c") != 3 {
		t.Fatalf("counter diff = %d, want 3", d.Value("c"))
	}
	if d.Value("g") != 9 {
		t.Fatalf("gauge diff = %d, want current level 9", d.Value("g"))
	}
	hs, _ := d.Get("h")
	if hs.Value != 1 || hs.Sum != 50 {
		t.Fatalf("hist diff = %+v, want 1 observation of 50", hs)
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != 100 || hs.Buckets[0].N != 1 {
		t.Fatalf("hist diff buckets = %+v", hs.Buckets)
	}
}

func TestMergeWithPrefix(t *testing.T) {
	a, b := New(), New()
	a.Counter("x").Add(1)
	b.Counter("x").Add(2)
	m := Merge(a.Snapshot().WithPrefix("v0"), b.Snapshot().WithPrefix("v1"))
	if m.Value("v0/x") != 1 || m.Value("v1/x") != 2 {
		t.Fatalf("merged = %+v", m.Samples)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		reg := New()
		// register in different orders; snapshot must sort identically
		reg.Counter("b/two").Add(2)
		reg.Counter("a/one").Add(1)
		return reg.Snapshot()
	}
	if !bytes.Equal(build().JSON(), build().JSON()) {
		t.Fatal("same-content snapshots marshal differently")
	}
	var decoded Snapshot
	if err := json.Unmarshal(build().JSON(), &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestWriteReport(t *testing.T) {
	reg := New()
	reg.Counter("a").Add(1)
	var buf bytes.Buffer
	if err := WriteReport(&buf, "json", reg); err != nil {
		t.Fatal(err)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if _, ok := obj["metrics"]; !ok {
		t.Fatalf("report missing metrics section: %s", buf.String())
	}
	buf.Reset()
	if err := WriteReport(&buf, "text", reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== metrics ==") {
		t.Fatalf("text report missing section header: %q", buf.String())
	}
}
