// Package metrics is the repository's observability substrate: a
// deterministic, allocation-light registry of counters, gauges and
// histograms keyed by hierarchical slash-separated names such as
// "n1/network/forwarding/forwarded" (node/layer/sublayer/metric).
//
// The design follows three rules:
//
//   - Instruments are usable as zero values. Components embed Counter
//     and Gauge fields by value, so instrumentation costs nothing when
//     no registry is attached and a single struct allocation when one
//     is.
//   - Registration is adoption, not creation. A component keeps its
//     counters as ordinary fields (the single source of truth) and a
//     Scope adopts pointers to them under hierarchical names. The old
//     per-package Stats() snapshot structs are replaced by View maps
//     built from the same fields.
//   - Snapshots are deterministic. Samples are sorted by name and hold
//     only plain integers, so two runs of the same seeded simulation
//     marshal to byte-identical JSON.
package metrics

// Instrument is the closed set of metric kinds a Registry can hold:
// *Counter, *Gauge, *Histogram and CounterSum.
type Instrument interface {
	sample(name string) Sample
}

// Counter is a monotonically increasing uint64. The zero value is
// ready to use.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

func (c *Counter) sample(name string) Sample {
	return Sample{Name: name, Kind: KindCounter, Value: int64(c.v)}
}

// CounterSum is an aggregate instrument: it samples as one counter
// whose value is the sum of its parts. The sharded simulator backend
// uses it to keep per-shard counters (each with a single writer — the
// discipline that replaces atomics) while exporting the exact metric
// names and totals the sequential simulator registers, so metrics
// snapshots stay byte-identical across engines.
type CounterSum []*Counter

// Value returns the sum of the parts.
func (s CounterSum) Value() uint64 {
	var total uint64
	for _, c := range s {
		total += c.v
	}
	return total
}

func (s CounterSum) sample(name string) Sample {
	return Sample{Name: name, Kind: KindCounter, Value: int64(s.Value())}
}

// Gauge is an instantaneous int64 level (queue depth, window size).
// The zero value is ready to use.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the level by d (which may be negative).
func (g *Gauge) Add(d int64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

func (g *Gauge) sample(name string) Sample {
	return Sample{Name: name, Kind: KindGauge, Value: g.v}
}

// Histogram counts int64 observations into fixed buckets. Bounds are
// inclusive upper edges in ascending order; observations above the
// last bound land in an implicit overflow bucket.
type Histogram struct {
	bounds []int64
	counts []uint64
	sum    int64
	n      uint64
}

// NewHistogram builds a histogram with the given ascending inclusive
// upper bounds. At least one bound is required.
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / int64(h.n)
}

func (h *Histogram) sample(name string) Sample {
	s := Sample{Name: name, Kind: KindHistogram, Value: int64(h.n), Sum: h.sum}
	for i, b := range h.bounds {
		if h.counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: b, N: h.counts[i]})
		}
	}
	if over := h.counts[len(h.bounds)]; over > 0 {
		s.Buckets = append(s.Buckets, Bucket{Le: -1, N: over})
	}
	return s
}

// Instrumented is implemented by components that can adopt their
// instruments into a registry scope. BindMetrics must tolerate a nil
// scope (all Scope methods are nil-safe no-ops).
type Instrumented interface {
	BindMetrics(sc *Scope)
}

// View is a component-local, read-only projection of its instruments —
// the thin accessor that replaced the per-package Stats snapshot
// structs. Keys are metric leaf names ("retransmits", "queue_drop").
type View map[string]uint64

// Get returns the named value, or 0 if absent.
func (v View) Get(name string) uint64 { return v[name] }
