// Package backends constructs netsim substrate backends by name. It is
// the one registry mapping the user-facing backend selector ("sim",
// "chan", "udp") to a constructor, shared by the transport harness,
// the workload engine, the E15 soak and the examples — netsim itself
// cannot host it without importing its own implementations.
package backends

import (
	"fmt"

	"repro/internal/channet"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/udpnet"
)

// Backend kind names. Sim is the deterministic discrete-event
// simulator; Chan the in-process channel network; UDP the loopback
// real-socket backend.
const (
	Sim  = "sim"
	Chan = "chan"
	UDP  = "udp"
)

// Names lists every backend kind, sim first.
func Names() []string { return []string{Sim, Chan, UDP} }

// New builds the named backend, seeded with seed. When reg is non-nil
// the backend registers its instruments under "netsim/..." — the same
// shape on every backend. The empty kind means Sim, so zero-valued
// configs keep their deterministic default.
func New(kind string, seed int64, reg *metrics.Registry) (netsim.Backend, error) {
	switch kind {
	case Sim, "":
		var opts []netsim.Option
		if reg != nil {
			opts = append(opts, netsim.WithMetrics(reg))
		}
		return netsim.NewSimulator(seed, opts...), nil
	case Chan:
		return channet.New(seed, reg), nil
	case UDP:
		return udpnet.New(seed, reg)
	default:
		return nil, fmt.Errorf("backends: unknown backend %q (want sim, chan or udp)", kind)
	}
}

// Realtime reports whether kind runs on the wall clock (everything but
// the simulator). Drivers use it to pick polling over virtual RunFor.
func Realtime(kind string) bool { return kind == Chan || kind == UDP }

// UDPAvailable reports whether the UDP backend can run here; soak jobs
// use it to skip gracefully where loopback sockets are forbidden.
func UDPAvailable() bool { return udpnet.Available() }
