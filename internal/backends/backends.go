// Package backends constructs netsim substrate backends by name. It is
// the one registry mapping the user-facing backend selector ("sim",
// "chan", "udp") to a constructor, shared by the transport harness,
// the workload engine, the E15 soak and the examples — netsim itself
// cannot host it without importing its own implementations.
package backends

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/channet"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/udpnet"
)

// Backend kind names. Sim is the deterministic discrete-event
// simulator; Sharded its multi-core twin (select a shard count with
// "sharded:N", default 4); Chan the in-process channel network; UDP
// the loopback real-socket backend.
const (
	Sim     = "sim"
	Sharded = "sharded"
	Chan    = "chan"
	UDP     = "udp"
)

// DefaultShards is the shard count "sharded" implies when no ":N"
// suffix picks one.
const DefaultShards = 4

// ShardedKind renders the backend kind string selecting the sharded
// simulator with n shards ("sharded:N").
func ShardedKind(n int) string {
	if n < 1 {
		n = 1
	}
	return fmt.Sprintf("%s:%d", Sharded, n)
}

// Names lists every backend kind, sim first.
func Names() []string { return []string{Sim, Sharded, Chan, UDP} }

// New builds the named backend, seeded with seed. When reg is non-nil
// the backend registers its instruments under "netsim/..." — the same
// shape on every backend. The empty kind means Sim, so zero-valued
// configs keep their deterministic default.
func New(kind string, seed int64, reg *metrics.Registry) (netsim.Backend, error) {
	switch kind {
	case Sim, "":
		var opts []netsim.Option
		if reg != nil {
			opts = append(opts, netsim.WithMetrics(reg))
		}
		return netsim.NewSimulator(seed, opts...), nil
	case Chan:
		return channet.New(seed, reg), nil
	case UDP:
		return udpnet.New(seed, reg)
	default:
		if base, arg, ok := strings.Cut(kind, ":"); ok && base == Sharded {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("backends: bad shard count in %q (want sharded:N, N ≥ 1)", kind)
			}
			return netsim.NewSharded(seed, n, reg), nil
		}
		if kind == Sharded {
			return netsim.NewSharded(seed, DefaultShards, reg), nil
		}
		return nil, fmt.Errorf("backends: unknown backend %q (want sim, sharded[:N], chan or udp)", kind)
	}
}

// Realtime reports whether kind runs on the wall clock (everything but
// the simulator). Drivers use it to pick polling over virtual RunFor.
func Realtime(kind string) bool { return kind == Chan || kind == UDP }

// UDPAvailable reports whether the UDP backend can run here; soak jobs
// use it to skip gracefully where loopback sockets are forbidden.
func UDPAvailable() bool { return udpnet.Available() }
