// Package channet is the in-process channel-network backend: the same
// netsim.Backend contract as the simulator, but with no virtual clock —
// goroutines and real time.Timers carry the packets, in the style of
// P2P-Park's sim.Network. Each link owns a FIFO delivery channel
// drained by a goroutine that sleeps until a packet's due time;
// reorder-delayed packets and duplicates travel out-of-band through
// time.AfterFunc so in-order traffic can overtake them, exactly as on
// the simulator.
//
// All protocol callbacks are serialized by the embedded RTClock's
// mutex, so stacks written for the simulator run unchanged; external
// drivers go through Exec.
package channet

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Network is the channel-network backend. Create with New, wire links
// with NewLink (or netsim.NewDuplexOn), and Close when done to stop
// the delivery goroutines.
type Network struct {
	*netsim.RTClock
	links []*link
}

// New builds a channel network seeded with seed. When reg is non-nil
// the backend registers the same "netsim/..." instruments the
// simulator does.
func New(seed int64, reg *metrics.Registry) *Network {
	return &Network{RTClock: netsim.NewRTClock("chan", seed, reg)}
}

// NewLink creates a unidirectional impaired link delivering to dst and
// starts its delivery goroutine.
func (n *Network) NewLink(cfg netsim.LinkConfig, dst netsim.Handler) netsim.Port {
	if dst == nil {
		panic("channet: NewLink with nil destination")
	}
	l := &link{
		core: netsim.NewRTLinkCore(n.RTClock, cfg),
		clk:  n.RTClock,
		dst:  dst,
		ch:   make(chan entry, 1024),
		done: make(chan struct{}),
	}
	n.links = append(n.links, l)
	go l.run()
	return l
}

// Close suppresses all pending timers and stops every link's delivery
// goroutine.
func (n *Network) Close() error {
	err := n.RTClock.Close()
	for _, l := range n.links {
		close(l.done)
	}
	return err
}

// entry is one in-order packet waiting in a link's delivery channel.
type entry struct {
	data []byte
	ecn  bool
	due  time.Time
}

// link is one unidirectional channel-network link: the shared
// real-time impairment core plus a FIFO channel and its drainer.
type link struct {
	core *netsim.RTLinkCore
	clk  *netsim.RTClock
	dst  netsim.Handler
	ch   chan entry
	done chan struct{}
}

// Name returns the link's creation-order identity.
func (l *link) Name() string { return l.core.Name() }

// Send copies data into a pooled buffer and transmits it.
func (l *link) Send(data []byte) { l.SendOwned(l.core.Ingest(data), false) }

// SendPacket is SendOwned for a packet that may carry an ECN mark.
func (l *link) SendPacket(pkt *netsim.Packet) { l.SendOwned(pkt.Data, pkt.ECN) }

// SendOwned transmits data, taking ownership of the buffer. Callers
// hold the backend lock (protocol code always does).
func (l *link) SendOwned(data []byte, ecn bool) {
	plan, ok := l.core.PlanSend(data)
	if !ok {
		return
	}
	if plan.ECN {
		ecn = true
	}
	due := time.Now().Add(plan.Delay)
	l.enqueue(data, ecn, due, plan.Late)
	if plan.Dup != nil {
		// The duplicate trails by 1µs and goes out-of-band: its copy
		// already exists, so FIFO order is not owed to it.
		l.enqueue(plan.Dup, ecn, due.Add(time.Microsecond), true)
	}
}

// enqueue routes one packet to its carrier: the FIFO channel for
// in-order traffic, a standalone timer for reorder-delayed packets and
// duplicates (so the channel's FIFO traffic can overtake them). A full
// channel degrades to the timer path rather than blocking under the
// backend lock.
func (l *link) enqueue(data []byte, ecn bool, due time.Time, outOfBand bool) {
	if !outOfBand {
		select {
		case l.ch <- entry{data: data, ecn: ecn, due: due}:
			return
		default:
		}
	}
	l.clk.After(time.Until(due), func() { l.deliver(data, ecn) })
}

// run drains the FIFO channel, sleeping until each packet's due time.
func (l *link) run() {
	for {
		select {
		case <-l.done:
			return
		case e := <-l.ch:
			if d := time.Until(e.due); d > 0 {
				time.Sleep(d)
			}
			l.clk.ExecStep(func() { l.deliver(e.data, e.ecn) })
		}
	}
}

// deliver runs the arrival half under the backend lock.
func (l *link) deliver(data []byte, ecn bool) {
	if l.core.Delivered(data) {
		l.dst(&netsim.Packet{Data: data, ECN: ecn})
	}
}

// SetUp raises or cuts the link.
func (l *link) SetUp(up bool) { l.core.SetUp(up) }

// Up reports whether the link is passing traffic.
func (l *link) Up() bool { return l.core.Up() }

// SetLossProb replaces the random-loss probability at runtime.
func (l *link) SetLossProb(p float64) { l.core.SetLossProb(p) }

// SetReorderProb replaces the reordering probability at runtime.
func (l *link) SetReorderProb(p float64) { l.core.SetReorderProb(p) }

// SetDupProb replaces the duplication probability at runtime.
func (l *link) SetDupProb(p float64) { l.core.SetDupProb(p) }

// Stats returns a view of the link counters.
func (l *link) Stats() metrics.View { return l.core.Stats() }

// Config returns the link's configuration.
func (l *link) Config() netsim.LinkConfig { return l.core.Config() }
