package channet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
)

// waitFor polls cond under the network lock until it holds or the
// wall deadline passes.
func waitFor(t *testing.T, n *Network, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := false
		n.Exec(func() { ok = cond() })
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestChanDeliveryInOrder(t *testing.T) {
	n := New(1, nil)
	defer n.Close()
	var got [][]byte
	var port netsim.Port
	n.Exec(func() {
		port = n.NewLink(netsim.LinkConfig{Delay: time.Millisecond}, func(p *netsim.Packet) {
			got = append(got, append([]byte(nil), p.Data...))
		})
		for i := 0; i < 20; i++ {
			port.Send([]byte(fmt.Sprintf("msg-%02d", i)))
		}
	})
	waitFor(t, n, "20 deliveries", func() bool { return len(got) == 20 })
	n.Exec(func() {
		for i, g := range got {
			if want := fmt.Sprintf("msg-%02d", i); string(g) != want {
				t.Fatalf("packet %d out of order: got %q want %q", i, g, want)
			}
		}
	})
}

func TestChanSendDoesNotAliasCaller(t *testing.T) {
	n := New(1, nil)
	defer n.Close()
	var got []byte
	var port netsim.Port
	buf := []byte("caller-owned payload")
	n.Exec(func() {
		port = n.NewLink(netsim.LinkConfig{Delay: 5 * time.Millisecond}, func(p *netsim.Packet) {
			got = append([]byte(nil), p.Data...)
		})
		port.Send(buf)
		// The send is in flight; scribbling over the caller's buffer
		// must not corrupt it (Send clones via the CloneBuf path).
		for i := range buf {
			buf[i] = 'X'
		}
	})
	waitFor(t, n, "delivery", func() bool { return got != nil })
	if !bytes.Equal(got, []byte("caller-owned payload")) {
		t.Fatalf("delivery aliased caller memory: got %q", got)
	}
}

func TestChanDuplicateIsDeepCopy(t *testing.T) {
	n := New(1, nil)
	defer n.Close()
	var got [][]byte
	var port netsim.Port
	n.Exec(func() {
		port = n.NewLink(netsim.LinkConfig{Delay: time.Millisecond, DupProb: 1.0}, func(p *netsim.Packet) {
			got = append(got, append([]byte(nil), p.Data...))
		})
		port.Send([]byte("dup me"))
	})
	waitFor(t, n, "original + duplicate", func() bool { return len(got) >= 2 })
	n.Exec(func() {
		for i, g := range got[:2] {
			if string(g) != "dup me" {
				t.Fatalf("delivery %d corrupted: %q", i, g)
			}
		}
	})
}

func TestChanMetricsIdentity(t *testing.T) {
	reg := metrics.New()
	n := New(1, reg)
	defer n.Close()
	var delivered int
	var port netsim.Port
	n.Exec(func() {
		port = n.NewLink(netsim.LinkConfig{}, func(p *netsim.Packet) { delivered++ })
		port.Send([]byte("x"))
	})
	waitFor(t, n, "delivery", func() bool { return delivered == 1 })
	snap := reg.Snapshot()
	var sawLink, sawEvents bool
	for _, s := range snap.Samples {
		switch s.Name {
		case "netsim/link0/sent":
			sawLink = true
			if s.Value != 1 {
				t.Errorf("link0/sent = %d, want 1", s.Value)
			}
		case "netsim/events/executed":
			sawEvents = true
			if s.Value < 1 {
				t.Errorf("events/executed = %d, want >= 1", s.Value)
			}
		}
	}
	if !sawLink || !sawEvents {
		t.Fatalf("missing sim-identical instrument names (link=%v events=%v)", sawLink, sawEvents)
	}
}
