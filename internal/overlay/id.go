package overlay

import (
	"crypto/sha1"
	"fmt"
	"sort"

	"repro/internal/network"
)

// ID is a 160-bit overlay identifier in Kademlia's XOR metric space.
// Node IDs derive deterministically from member addresses and key IDs
// from key strings, so any member can recompute any ID locally — peer
// lists on the wire carry 4-byte addresses, never 20-byte IDs.
type ID [20]byte

// NodeID derives the overlay ID of the member at addr.
func NodeID(addr network.Addr) ID {
	return ID(sha1.Sum(fmt.Appendf(nil, "node-%d", addr)))
}

// KeyID derives the overlay ID a key hashes to.
func KeyID(key string) ID {
	return ID(sha1.Sum([]byte(key)))
}

// xor returns the XOR distance between two IDs.
func (a ID) xor(b ID) ID {
	var d ID
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// less orders IDs lexicographically — XOR distances compare this way.
func (a ID) less(b ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// bucketIndex is the index of the highest set bit of the XOR distance
// a^b: 159 for far apart, 0 for adjacent, -1 for equal IDs. It names
// the k-bucket b belongs to in a's routing table.
func (a ID) bucketIndex(b ID) int {
	d := a.xor(b)
	for i := 0; i < len(d); i++ {
		if d[i] == 0 {
			continue
		}
		bit := 7
		for d[i]>>uint(bit) == 0 {
			bit--
		}
		return (len(d)-1-i)*8 + bit
	}
	return -1
}

// sortByDistance orders addrs by XOR distance of their node IDs to
// target, closest first, ties (impossible for distinct addresses)
// broken by address so the order is total.
func sortByDistance(addrs []network.Addr, target ID) {
	sort.Slice(addrs, func(i, j int) bool {
		di, dj := NodeID(addrs[i]).xor(target), NodeID(addrs[j]).xor(target)
		if di != dj {
			return di.less(dj)
		}
		return addrs[i] < addrs[j]
	})
}
