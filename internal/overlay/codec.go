package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/network"
)

// Wire format, version 1. Every overlay message — RPC request and
// response, gossip cast, DHT query — travels as one frame on a
// transport.Conn byte stream:
//
//	offset 0  magic   0xC5
//	       1  version 0x01
//	       2  class   frame class (request / response / cast)
//	       3  kind    application message kind (MsgKind)
//	       4  req id  uint64 big-endian (0 for casts)
//	      12  from    uint32 big-endian sender address
//	      16  length  uint32 big-endian payload length
//	      20  payload
//
// The codec is versioned so a future frame layout can coexist: a
// receiver rejects unknown magic/version bytes by killing the
// connection (counted under overlay/codec_errors) instead of guessing
// at field offsets.
const (
	frameMagic   = 0xC5
	frameVersion = 0x01
	headerLen    = 20
	// maxPayload bounds a single frame; anything larger is a codec
	// error on both sides (overlay messages are small control traffic,
	// not bulk transfer — bulk bytes belong to the workload engine).
	maxPayload = 1 << 16
)

// Frame class bytes.
const (
	classRequest  = 0x01
	classResponse = 0x02
	classCast     = 0x03
)

// MsgKind names an application message type within a tier.
type MsgKind uint8

// Message kinds across the three tiers. RPC kinds are per-service
// (echo is the E13 workload); DHT and gossip kinds are the protocol
// messages specified in docs/OVERLAYS.md.
const (
	// KindEcho is the RPC tier's echo service: the response payload
	// must equal the request payload byte for byte.
	KindEcho MsgKind = 0x10
	// KindFindNode asks for the k closest members to a 160-bit target.
	KindFindNode MsgKind = 0x20
	// KindStore writes a key/value pair to the receiver's local store.
	KindStore MsgKind = 0x21
	// KindGet asks for a value; the response carries the value or the
	// k closest members to the key.
	KindGet MsgKind = 0x22
	// KindRumor pushes one rumor (gossip cast, no response).
	KindRumor MsgKind = 0x30
	// KindDigest asks a peer to diff the sender's rumor key set.
	KindDigest MsgKind = 0x31
)

// frame is one decoded overlay message.
type frame struct {
	class   uint8
	kind    MsgKind
	reqID   uint64
	from    network.Addr
	payload []byte
}

// appendFrame encodes a frame onto buf.
func appendFrame(buf []byte, class uint8, kind MsgKind, reqID uint64, from network.Addr, payload []byte) []byte {
	var hdr [headerLen]byte
	hdr[0] = frameMagic
	hdr[1] = frameVersion
	hdr[2] = class
	hdr[3] = byte(kind)
	binary.BigEndian.PutUint64(hdr[4:], reqID)
	binary.BigEndian.PutUint32(hdr[12:], uint32(from))
	binary.BigEndian.PutUint32(hdr[16:], uint32(len(payload)))
	return append(append(buf, hdr[:]...), payload...)
}

var (
	errBadMagic   = errors.New("overlay: bad frame magic")
	errBadVersion = errors.New("overlay: unsupported codec version")
	errOversize   = errors.New("overlay: oversized frame payload")
)

// parseFrame decodes the first complete frame in buf. It returns the
// frame, the number of bytes consumed (0 when buf holds only a partial
// frame), or an unrecoverable codec error — after which the connection
// carrying buf cannot be resynchronized and must be dropped.
func parseFrame(buf []byte) (frame, int, error) {
	if len(buf) < headerLen {
		return frame{}, 0, nil
	}
	if buf[0] != frameMagic {
		return frame{}, 0, errBadMagic
	}
	if buf[1] != frameVersion {
		return frame{}, 0, fmt.Errorf("%w 0x%02x", errBadVersion, buf[1])
	}
	n := binary.BigEndian.Uint32(buf[16:])
	if n > maxPayload {
		return frame{}, 0, errOversize
	}
	total := headerLen + int(n)
	if len(buf) < total {
		return frame{}, 0, nil
	}
	f := frame{
		class: buf[2],
		kind:  MsgKind(buf[3]),
		reqID: binary.BigEndian.Uint64(buf[4:]),
		from:  network.Addr(binary.BigEndian.Uint32(buf[12:])),
	}
	// Copy the payload out: buf aliases the connection's reassembly
	// buffer, which the read loop compacts after every parse.
	f.payload = append([]byte(nil), buf[headerLen:total]...)
	return f, total, nil
}

// --- payload encoding helpers (deterministic, length-prefixed) ---

// appendUint16 / appendBytes build tier payloads; readers mirror them.
func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendBytes(b, p []byte) []byte {
	b = appendUint16(b, uint16(len(p)))
	return append(b, p...)
}

func readUint16(b []byte) (uint16, []byte, bool) {
	if len(b) < 2 {
		return 0, nil, false
	}
	return uint16(b[0])<<8 | uint16(b[1]), b[2:], true
}

func readBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := readUint16(b)
	if !ok || len(rest) < int(n) {
		return nil, nil, false
	}
	return rest[:n], rest[n:], true
}

// appendAddrs encodes a member list as uint32 addresses. Node IDs are
// derived from addresses (see id.go), so peer lists never carry raw
// IDs on the wire.
func appendAddrs(b []byte, addrs []network.Addr) []byte {
	b = appendUint16(b, uint16(len(addrs)))
	for _, a := range addrs {
		b = append(b, byte(uint32(a)>>24), byte(uint32(a)>>16), byte(uint32(a)>>8), byte(a))
	}
	return b
}

func readAddrs(b []byte) ([]network.Addr, []byte, bool) {
	n, rest, ok := readUint16(b)
	if !ok || len(rest) < 4*int(n) {
		return nil, nil, false
	}
	addrs := make([]network.Addr, n)
	for i := range addrs {
		addrs[i] = network.Addr(binary.BigEndian.Uint32(rest[4*i:]))
	}
	return addrs, rest[4*int(n):], true
}
