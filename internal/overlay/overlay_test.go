package overlay

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/transport/harness"
)

func TestCodecRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, classRequest, KindEcho, 42, 7, []byte("hello"))
	buf = appendFrame(buf, classResponse, KindFindNode, 43, 9, nil)
	f, used, err := parseFrame(buf)
	if err != nil || used != headerLen+5 {
		t.Fatalf("parse 1: used=%d err=%v", used, err)
	}
	if f.class != classRequest || f.kind != KindEcho || f.reqID != 42 || f.from != 7 || string(f.payload) != "hello" {
		t.Fatalf("frame 1 mismatch: %+v", f)
	}
	buf = buf[used:]
	f, used, err = parseFrame(buf)
	if err != nil || used != headerLen {
		t.Fatalf("parse 2: used=%d err=%v", used, err)
	}
	if f.class != classResponse || f.reqID != 43 || len(f.payload) != 0 {
		t.Fatalf("frame 2 mismatch: %+v", f)
	}
}

func TestCodecPartialAndBad(t *testing.T) {
	full := appendFrame(nil, classCast, KindRumor, 0, 3, []byte("abcdef"))
	for cut := 0; cut < len(full); cut++ {
		if _, used, err := parseFrame(full[:cut]); used != 0 || err != nil {
			t.Fatalf("cut=%d: used=%d err=%v, want partial", cut, used, err)
		}
	}
	bad := append([]byte(nil), full...)
	bad[0] = 0xFF
	if _, _, err := parseFrame(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), full...)
	bad[1] = 0x7F
	if _, _, err := parseFrame(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestIDBuckets(t *testing.T) {
	a, b := NodeID(1), NodeID(2)
	if a == b {
		t.Fatal("distinct addrs share an ID")
	}
	if a.bucketIndex(a) != -1 {
		t.Fatal("self bucket must be -1")
	}
	i := a.bucketIndex(b)
	if i < 0 || i > 159 {
		t.Fatalf("bucket index %d out of range", i)
	}
	addrs := []network.Addr{5, 2, 8, 3}
	sortByDistance(addrs, NodeID(5))
	if addrs[0] != 5 {
		t.Fatalf("self not closest to own ID: %v", addrs)
	}
}

func clean() Scenario { return Scenarios(8)[0] }

func TestRPCCleanSim(t *testing.T) {
	res := Run(RunConfig{Seed: 1, Tier: TierRPC, Scenario: clean(), Kind: harness.KindSublayeredNative})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Issued != 8*12 || res.Resolved != res.Issued || res.Missed != 0 {
		t.Fatalf("issued=%d resolved=%d missed=%d", res.Issued, res.Resolved, res.Missed)
	}
	if res.LatP50 <= 0 || res.MsgsPerOp <= 0 {
		t.Fatalf("latency/msgs not measured: %+v", res)
	}
}

func TestDHTCleanSim(t *testing.T) {
	res := Run(RunConfig{Seed: 2, Tier: TierDHT, Scenario: clean(), Kind: harness.KindSublayeredNative})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Issued != 8*8 {
		t.Fatalf("issued=%d", res.Issued)
	}
	if res.Missed != 0 {
		t.Fatalf("clean DHT run missed %d ops", res.Missed)
	}
	if res.HopP50 < 1 {
		t.Fatalf("hop p50 %d, want >= 1", res.HopP50)
	}
}

func TestGossipCleanSim(t *testing.T) {
	res := Run(RunConfig{Seed: 3, Tier: TierGossip, Scenario: clean(), Kind: harness.KindMonolithic})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Resolved != res.Issued || res.Missed != 0 {
		t.Fatalf("converged %d of %d rumors", res.Resolved, res.Issued)
	}
	if res.ConvergeMax <= 0 {
		t.Fatal("convergence not measured")
	}
}

func TestDeterminismSimVsSharded(t *testing.T) {
	for _, tier := range Tiers() {
		key := func(backend string) string {
			res := Run(RunConfig{Seed: 11, Backend: backend, Tier: tier,
				Scenario: Scenarios(8)[3], Kind: harness.KindSublayeredNative})
			return fmt.Sprintf("%d/%d/%d hops=%d/%d lat=%v/%v conv=%v/%v msgs=%.3f retries=%d dups=%d viol=%d",
				res.Issued, res.Resolved, res.Missed, res.HopP50, res.HopP99,
				res.LatP50, res.LatP99, res.ConvergeP50, res.ConvergeMax,
				res.MsgsPerOp, res.Retries, res.DupReplies, len(res.Violations))
		}
		sim, sharded := key("sim"), key("sharded:4")
		if sim != sharded {
			t.Fatalf("%s: sim %q != sharded:4 %q", tier, sim, sharded)
		}
	}
}

// TestDHTJoinLeaveMidLookup drives the churn model at the protocol
// level: a batch of multi-round lookups is in flight when one member
// pauses (leave: state kept, reachability lost) and another joins the
// ring for the first time. Every lookup must terminate exactly once
// within the round bound, every value must still be found — K=4
// replicas tolerate one paused holder — and the late joiner must be
// able to resolve keys stored before it existed.
func TestDHTJoinLeaveMidLookup(t *testing.T) {
	cl := harness.BuildCluster(harness.ClusterConfig{Seed: 21, Nodes: 8, Kind: harness.KindSublayeredNative})
	defer cl.Close()

	const keys = 6
	dhts := make(map[network.Addr]*DHT)
	gets := make(map[string]int)   // key -> callback count
	founds := make(map[string]bool)
	var lateFound bool
	var lateCalls int
	cl.Exec(func() {
		inj := faults.New(cl.Sim, cl.Topo, 99)
		// Member 5 leaves (pauses) just as the lookup batch launches.
		inj.MustApply(faults.Script{Name: "leave", Steps: []faults.Step{
			{At: 4 * time.Second, For: 1500 * time.Millisecond, Fault: faults.RouterPause{Addr: 5}},
		}})
		for _, h := range cl.Hosts {
			n, err := NewNode(h.B, h.Addr, h.Stack, NodeConfig{Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			dhts[h.Addr] = NewDHT(n, DHTConfig{})
			if h.Addr != 8 {
				// Members 1..7 bootstrap immediately; 8 joins mid-lookup.
				addr := h.Addr
				n.B.Schedule(time.Duration(addr)*20*time.Millisecond, func() {
					dhts[addr].Join([]network.Addr{1}, nil)
				})
			}
		}
		// Keys land once the initial membership has settled.
		cl.Hosts[0].B.Schedule(2*time.Second, func() {
			for j := 0; j < keys; j++ {
				key := dhtKey(1, j)
				dhts[1].Store(key, dhtValue(key), nil)
			}
		})
		// The lookup batch: all keys at once, so several iterative
		// lookups are mid-flight when the pause and the join hit.
		cl.Host(2).B.Schedule(4*time.Second, func() {
			for j := 0; j < keys; j++ {
				key := dhtKey(1, j)
				dhts[2].Get(key, func(value []byte, rounds int, found bool) {
					gets[key]++
					if found && bytes.Equal(value, dhtValue(key)) {
						founds[key] = true
					}
					if rounds > (DHTConfig{}).withDefaults().MaxRounds {
						t.Errorf("get %s took %d rounds", key, rounds)
					}
				})
			}
		})
		cl.Host(8).B.Schedule(4020*time.Millisecond, func() {
			dhts[8].Join([]network.Addr{1, 4}, func() {
				// Joined mid-churn: the fresh member resolves a key
				// stored long before it existed.
				dhts[8].Get(dhtKey(1, 0), func(value []byte, _ int, found bool) {
					lateCalls++
					lateFound = found && bytes.Equal(value, dhtValue(dhtKey(1, 0)))
				})
			})
		})
	})
	cl.Sim.RunFor(20 * time.Second)
	cl.Exec(func() {
		for j := 0; j < keys; j++ {
			key := dhtKey(1, j)
			if gets[key] != 1 {
				t.Errorf("get %s: callback ran %d times, want exactly 1", key, gets[key])
			}
			if !founds[key] {
				t.Errorf("get %s: value not found despite 3 live replicas", key)
			}
		}
		if lateCalls != 1 || !lateFound {
			t.Errorf("late joiner: calls=%d found=%v, want 1/true", lateCalls, lateFound)
		}
	})
}

// TestGossipPartitionHealConverges runs the gossip tier through a hard
// partition in E10's fault vocabulary: half the ring is cut off while
// every member publishes, so rumors pile up on both sides of the
// split. After the heal, anti-entropy must resume convergence — every
// rumor everywhere, zero watchdog violations — and the convergence
// tail must visibly span the partition window (dissemination resumed,
// not restarted).
func TestGossipPartitionHealConverges(t *testing.T) {
	part := 6 * time.Second
	sc := Scenario{Name: "hard-partition-heal", Heals: true, Build: func(int) faults.Script {
		return faults.Script{Name: "hard-partition-heal", Steps: []faults.Step{
			{At: 500 * time.Millisecond, For: part, Fault: faults.Partition{Nodes: []network.Addr{5, 6, 7, 8}}},
		}}
	}}
	res := Run(RunConfig{Seed: 31, Tier: TierGossip, Scenario: sc, Kind: harness.KindSublayeredNative})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Resolved != res.Issued || res.Missed != 0 {
		t.Fatalf("converged %d of %d rumors after heal", res.Resolved, res.Issued)
	}
	if res.ConvergeMax < part {
		t.Fatalf("convergence max %v shorter than the %v partition — the split never bit", res.ConvergeMax, part)
	}
}

func TestRPCLateReplySuppressed(t *testing.T) {
	// Force the retry race: the attempt timeout (30ms) is far below the
	// round trip on a slow ring, so the client resends while the first
	// reply is still in flight. Both replies carry the same request id;
	// the first completes the call, the second must be suppressed and
	// counted — never delivered to the callback twice.
	cl := harness.BuildCluster(harness.ClusterConfig{
		Seed: 7, Nodes: 2, Kind: harness.KindSublayeredNative,
		Link: netsim.LinkConfig{Delay: 50 * time.Millisecond},
	})
	defer cl.Close()
	var a, b *Node
	completions, dups := 0, 0
	cl.Exec(func() {
		var err error
		a, err = NewNode(cl.Hosts[0].B, 1, cl.Hosts[0].Stack, NodeConfig{
			Seed: 7, AttemptTimeout: 30 * time.Millisecond, MaxAttempts: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err = NewNode(cl.Hosts[1].B, 2, cl.Hosts[1].Stack, NodeConfig{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		// The 50ms link puts the round trip (plus handshake) far past
		// the 30ms attempt timeout, so the first reply is still in
		// flight when the client resends — a guaranteed retry race.
		b.Handle(KindEcho, func(_ network.Addr, p []byte) []byte { return p })
		a.Call(2, KindEcho, []byte("once"), 2*time.Second, func(resp []byte, err error) {
			if err != nil {
				t.Errorf("call failed: %v", err)
			}
			if !bytes.Equal(resp, []byte("once")) {
				t.Errorf("bad echo %q", resp)
			}
			completions++
		})
	})
	cl.Sim.RunFor(5 * time.Second)
	cl.Exec(func() {
		_, _, _, retries, d := a.CallStats()
		if retries == 0 {
			t.Error("expected at least one retry")
		}
		dups = int(d)
	})
	if completions != 1 {
		t.Fatalf("callback ran %d times, want exactly 1", completions)
	}
	if dups == 0 {
		t.Fatal("expected duplicate replies to be counted")
	}
}
