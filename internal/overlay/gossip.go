package overlay

import (
	"encoding/binary"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/network"
)

// GossipConfig tunes one gossip member.
type GossipConfig struct {
	// Fanout is how many random peers each push round targets
	// (default 3).
	Fanout int
	// TTL is a rumor's rounds-to-live: how many push rounds it stays
	// hot after arriving (default 3). Anti-entropy repairs whatever
	// push misses, so TTL trades duplicate traffic for latency.
	TTL int
	// PushInterval is the hot-rumor push cadence (default 100ms).
	PushInterval time.Duration
	// AntiEntropyInterval is the digest-exchange cadence (default 500ms).
	AntiEntropyInterval time.Duration
	// CallDeadline bounds one digest exchange (default 1s).
	CallDeadline time.Duration
	// Metrics, when non-nil, adopts the gossip instruments.
	Metrics *metrics.Scope
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.TTL <= 0 {
		c.TTL = 3
	}
	if c.PushInterval <= 0 {
		c.PushInterval = 100 * time.Millisecond
	}
	if c.AntiEntropyInterval <= 0 {
		c.AntiEntropyInterval = 500 * time.Millisecond
	}
	if c.CallDeadline <= 0 {
		c.CallDeadline = time.Second
	}
	return c
}

// rumorKey packs (origin, seq) into the map key; rumors are totally
// ordered by it, which keeps every iteration deterministic.
func rumorKey(origin network.Addr, seq uint32) uint64 {
	return uint64(origin)<<32 | uint64(seq)
}

// Rumor is one gossip payload with its local arrival stamp — the raw
// material of convergence measurement (docs/OVERLAYS.md).
type Rumor struct {
	Origin  network.Addr
	Seq     uint32
	Body    []byte
	Arrived netsim.Time
	ttl     int
}

// Gossip is an epidemic pub-sub member: new rumors are pushed to
// Fanout random peers for TTL rounds (fast, redundant, lossy), and a
// periodic anti-entropy exchange — send a per-origin version digest,
// receive the rumors the digest proves missing — repairs whatever push
// lost, so dissemination converges even across healed partitions.
// Peer choice draws from the node-local RNG only.
type Gossip struct {
	n       *Node
	cfg     GossipConfig
	members []network.Addr // static membership minus self, sorted
	rumors  map[uint64]*Rumor
	keys    []uint64 // sorted; deterministic digest/delta iteration
	hot     []uint64
	mySeq   uint32
	pushR   *netsim.Repeater
	aeR     *netsim.Repeater

	published, accepted metrics.Counter
	duplicates, pushes  metrics.Counter
	digests, repaired   metrics.Counter
}

// NewGossip attaches a gossip member to a node runtime. members is the
// full static membership (self included is fine); push and
// anti-entropy timers start immediately. Call under the backend lock.
func NewGossip(n *Node, members []network.Addr, cfg GossipConfig) *Gossip {
	g := &Gossip{n: n, cfg: cfg.withDefaults(), rumors: make(map[uint64]*Rumor)}
	for _, m := range members {
		if m != n.Addr() {
			g.members = append(g.members, m)
		}
	}
	sort.Slice(g.members, func(i, j int) bool { return g.members[i] < g.members[j] })
	sc := cfg.Metrics
	sc.Register("published", &g.published)
	sc.Register("accepted", &g.accepted)
	sc.Register("duplicates", &g.duplicates)
	sc.Register("pushes", &g.pushes)
	sc.Register("digests", &g.digests)
	sc.Register("repaired", &g.repaired)
	n.Handle(KindRumor, g.serveRumor)
	n.Handle(KindDigest, g.serveDigest)
	g.pushR = n.B.Every(g.cfg.PushInterval, g.pushRound)
	g.aeR = n.B.Every(g.cfg.AntiEntropyInterval, g.antiEntropyRound)
	return g
}

// Stop cancels the member's timers (the conns die with the backend).
func (g *Gossip) Stop() {
	g.pushR.Stop()
	g.aeR.Stop()
}

// Publish originates a rumor and pushes it immediately; the sequence
// number is per-origin monotone, which is what makes digests compact.
func (g *Gossip) Publish(body []byte) (seq uint32) {
	g.mySeq++
	g.published.Inc()
	g.insert(&Rumor{Origin: g.n.Addr(), Seq: g.mySeq, Body: body,
		Arrived: g.n.B.Now(), ttl: g.cfg.TTL})
	g.pushRound()
	return g.mySeq
}

// Have reports whether the rumor (origin, seq) arrived, and when.
func (g *Gossip) Have(origin network.Addr, seq uint32) (netsim.Time, bool) {
	if r, ok := g.rumors[rumorKey(origin, seq)]; ok {
		return r.Arrived, true
	}
	return 0, false
}

// Count reports how many distinct rumors the member holds.
func (g *Gossip) Count() int { return len(g.rumors) }

func (g *Gossip) insert(r *Rumor) {
	k := rumorKey(r.Origin, r.Seq)
	g.rumors[k] = r
	i := sort.Search(len(g.keys), func(i int) bool { return g.keys[i] >= k })
	g.keys = append(g.keys, 0)
	copy(g.keys[i+1:], g.keys[i:])
	g.keys[i] = k
	if r.ttl > 0 {
		g.hot = append(g.hot, k)
	}
}

// accept folds a received rumor in, returning false on duplicates.
func (g *Gossip) accept(origin network.Addr, seq uint32, ttl int, body []byte) bool {
	if _, dup := g.rumors[rumorKey(origin, seq)]; dup {
		g.duplicates.Inc()
		return false
	}
	g.accepted.Inc()
	g.insert(&Rumor{Origin: origin, Seq: seq, Body: append([]byte(nil), body...),
		Arrived: g.n.B.Now(), ttl: ttl})
	return true
}

// --- push path ---

// pushRound forwards every hot rumor to Fanout random peers and ages
// it; rumors fall cold at ttl 0 and anti-entropy takes over.
func (g *Gossip) pushRound() {
	if len(g.hot) == 0 || len(g.members) == 0 {
		return
	}
	hot := g.hot
	g.hot = g.hot[:0]
	for _, k := range hot {
		r := g.rumors[k]
		if r == nil || r.ttl <= 0 {
			continue
		}
		r.ttl--
		payload := encodeRumor(nil, r)
		for _, i := range g.n.Rand().Perm(len(g.members))[:min(g.cfg.Fanout, len(g.members))] {
			g.pushes.Inc()
			g.n.Cast(g.members[i], KindRumor, payload)
		}
		if r.ttl > 0 {
			g.hot = append(g.hot, k)
		}
	}
}

func encodeRumor(b []byte, r *Rumor) []byte {
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(r.Origin))
	binary.BigEndian.PutUint32(hdr[4:], r.Seq)
	hdr[8] = byte(r.ttl)
	return appendBytes(append(b, hdr[:]...), r.Body)
}

func decodeRumor(b []byte) (origin network.Addr, seq uint32, ttl int, body, rest []byte, ok bool) {
	if len(b) < 9 {
		return 0, 0, 0, nil, nil, false
	}
	origin = network.Addr(binary.BigEndian.Uint32(b))
	seq = binary.BigEndian.Uint32(b[4:])
	ttl = int(b[8])
	body, rest, ok = readBytes(b[9:])
	return origin, seq, ttl, body, rest, ok
}

func (g *Gossip) serveRumor(_ network.Addr, payload []byte) []byte {
	origin, seq, ttl, body, _, ok := decodeRumor(payload)
	if !ok {
		return nil
	}
	// Forward with a decayed ttl so a rumor's total fan-in stays
	// bounded; accept ignores ttl for rumors already seen.
	if ttl > 0 {
		ttl--
	}
	g.accept(origin, seq, ttl, body)
	return nil
}

// --- anti-entropy path ---

// digest summarizes holdings per origin as (maxSeq, count). count <
// maxSeq tells the responder the digester has holes below the
// watermark and everything for that origin should be resent, not just
// seq > maxSeq — that closes the reordered-loss gap in one exchange.
func (g *Gossip) digest() []byte {
	type span struct {
		max, count uint32
	}
	spans := make(map[network.Addr]*span)
	var origins []network.Addr
	for _, k := range g.keys {
		origin := network.Addr(k >> 32)
		seq := uint32(k)
		s := spans[origin]
		if s == nil {
			s = &span{}
			spans[origin] = s
			origins = append(origins, origin)
		}
		s.count++
		if seq > s.max {
			s.max = seq
		}
	}
	b := appendUint16(nil, uint16(len(origins)))
	for _, o := range origins { // g.keys is sorted, so origins is too
		var rec [12]byte
		binary.BigEndian.PutUint32(rec[0:], uint32(o))
		binary.BigEndian.PutUint32(rec[4:], spans[o].max)
		binary.BigEndian.PutUint32(rec[8:], spans[o].count)
		b = append(b, rec[:]...)
	}
	return b
}

// deltaCap bounds one anti-entropy response; a big backlog drains over
// successive rounds instead of blowing the frame size limit.
const deltaCap = 128

// serveDigest answers with every rumor the digest proves the sender
// lacks.
func (g *Gossip) serveDigest(_ network.Addr, payload []byte) []byte {
	g.digests.Inc()
	n, rest, ok := readUint16(payload)
	if !ok || len(rest) < 12*int(n) {
		return appendUint16(nil, 0)
	}
	max := make(map[network.Addr]uint32, n)
	holes := make(map[network.Addr]bool, n)
	for i := 0; i < int(n); i++ {
		o := network.Addr(binary.BigEndian.Uint32(rest[12*i:]))
		m := binary.BigEndian.Uint32(rest[12*i+4:])
		c := binary.BigEndian.Uint32(rest[12*i+8:])
		max[o] = m
		holes[o] = c < m
	}
	var out []byte
	count := 0
	for _, k := range g.keys {
		if count >= deltaCap {
			break
		}
		origin, seq := network.Addr(k>>32), uint32(k)
		m, known := max[origin]
		if known && seq <= m && !holes[origin] {
			continue
		}
		out = encodeRumor(out, g.rumors[k])
		count++
	}
	return append(appendUint16(nil, uint16(count)), out...)
}

// antiEntropyRound sends the digest to one random peer and folds the
// returned delta in.
func (g *Gossip) antiEntropyRound() {
	if len(g.members) == 0 {
		return
	}
	peer := g.members[g.n.Rand().Intn(len(g.members))]
	g.n.Call(peer, KindDigest, g.digest(), g.cfg.CallDeadline, func(resp []byte, err error) {
		if err != nil {
			return
		}
		n, rest, ok := readUint16(resp)
		if !ok {
			return
		}
		for i := 0; i < int(n); i++ {
			origin, seq, ttl, body, r, ok := decodeRumor(rest)
			if !ok {
				return
			}
			rest = r
			if g.accept(origin, seq, ttl, body) {
				g.repaired.Inc()
			}
		}
	})
}
