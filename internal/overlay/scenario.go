package overlay

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/transport/harness"
	"repro/internal/verify"
)

// Tier names one overlay workload.
type Tier string

// The three overlay tiers E13 matrixes over.
const (
	TierRPC    Tier = "rpc"
	TierDHT    Tier = "dht"
	TierGossip Tier = "gossip"
)

// Tiers lists every tier in matrix order.
func Tiers() []Tier { return []Tier{TierRPC, TierDHT, TierGossip} }

// Scenario is one cell of the fault axis: a named script builder
// parameterized on cluster size (scripts reference member addresses).
type Scenario struct {
	Name string
	// Heals reports whether every fault in the script heals — healing
	// scenarios must end with all operations resolved and gossip
	// converged; a run that doesn't is a watchdog violation.
	Heals bool
	Build func(nodes int) faults.Script
}

// Scenarios is the E13 fault axis, deliberately reusing the E10
// vocabulary on the cluster ring: clean baseline, Gilbert–Elliott
// bursty loss on one ring link, a healed two-member partition, and
// member churn — three staggered RouterPause windows, the overlay's
// join/leave model (state kept, reachability lost).
func Scenarios(nodes int) []Scenario {
	_ = nodes
	return []Scenario{
		{Name: "clean", Heals: true, Build: func(int) faults.Script {
			return faults.Script{Name: "clean"}
		}},
		{Name: "bursty-loss", Heals: true, Build: func(int) faults.Script {
			return faults.Script{Name: "bursty-loss", Steps: []faults.Step{
				{At: 0, For: 30 * time.Second, Fault: faults.BurstyLoss{A: 2, B: 3, GE: faults.GEConfig{
					MeanGood: 400 * time.Millisecond, MeanBad: 60 * time.Millisecond, LossBad: 0.4,
				}}},
			}}
		}},
		{Name: "partition-heal", Heals: true, Build: func(int) faults.Script {
			return faults.Script{Name: "partition-heal", Steps: []faults.Step{
				{At: time.Second, For: 3 * time.Second, Fault: faults.Partition{Nodes: []network.Addr{3, 4}}},
			}}
		}},
		{Name: "churn", Heals: true, Build: func(n int) faults.Script {
			// Three members cycle out and back, one at a time, windows
			// disjoint so the ring always routes around the hole.
			s := faults.Script{Name: "churn"}
			victims := []network.Addr{3, network.Addr(n - 2), 2}
			at := 2 * time.Second
			for _, v := range victims {
				if int(v) > n || v < 1 {
					continue
				}
				s.Steps = append(s.Steps, faults.Step{
					At: at, For: 1500 * time.Millisecond, Fault: faults.RouterPause{Addr: v},
				})
				at += 3 * time.Second
			}
			return s
		}},
	}
}

// RunConfig is one E13 cell: a tier on a stack under a scenario.
type RunConfig struct {
	Seed    int64
	Backend string
	Kind    harness.Kind
	// Nodes is the cluster size (default 8).
	Nodes int
	Tier  Tier
	Scenario Scenario
	// Ops is the per-member operation count (echo calls, keys
	// stored+fetched, rumors published); zero picks a tier default.
	Ops int
	// Budget bounds the run (default 60s virtual / 20s wall).
	Budget time.Duration
	// Metrics receives every instrument (created when nil).
	Metrics *metrics.Registry
}

// RunResult is one cell's outcome: the tier metrics E13 tabulates,
// the watchdog verdict, and the registry snapshot for folding.
type RunResult struct {
	Tier     Tier
	Scenario string
	// Issued/Resolved/Missed count logical operations; for gossip,
	// Issued is rumors published and Resolved rumors fully disseminated.
	Issued, Resolved, Missed int
	// HopP50/HopP99 are per-lookup round counts (DHT tiers only).
	HopP50, HopP99 int
	// LatP50/LatP99 are call latencies (RPC tier only).
	LatP50, LatP99 time.Duration
	// ConvergeP50/ConvergeMax are per-rumor dissemination times
	// (gossip tier only): publish to last member's arrival.
	ConvergeP50, ConvergeMax time.Duration
	// MsgsPerOp is total overlay frames sent divided by Issued.
	MsgsPerOp float64
	Retries   uint64
	DupReplies uint64
	// Violations folds watchdog, contract and tier-invariant failures.
	Violations []string
	Elapsed    time.Duration
	Snap       metrics.Snapshot
	Reg        *metrics.Registry
}

// MissRate is Missed/Issued.
func (r *RunResult) MissRate() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.Issued)
}

// nodeRun is one member's workload state. It is written ONLY from that
// member's backend events (its shard), and read by the driver at Exec
// barriers — the same single-writer discipline the overlay itself uses,
// so a sharded run stays race-free and byte-deterministic.
type nodeRun struct {
	addr network.Addr
	node *Node
	dht  *DHT
	gsp  *Gossip

	issued, okOps, missed int
	hops                  []int
	lats                  []time.Duration
	// wrongWant/wrongGot hold the first value mismatch (a real
	// invariant violation, unlike a miss) for the watchdog barrier.
	wrong               int
	wrongWant, wrongGot []byte
	phase               int // DHT: 0 join, 1 store, 2 get, 3 done
	opIdx               int
	pacer               *netsim.Repeater
	doneFlag            bool
}

func defaultOps(tier Tier) int {
	switch tier {
	case TierRPC:
		return 12
	case TierDHT:
		return 4
	default:
		return 4
	}
}

// Run executes one E13 cell: build the member ring on the requested
// stack and backend, arm the fault script, drive the tier workload to
// completion (or budget), then check invariants and fold metrics.
func Run(cfg RunConfig) *RunResult {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.Ops <= 0 {
		cfg.Ops = defaultOps(cfg.Tier)
	}
	rt := harness.Realtime(cfg.Backend)
	if cfg.Budget <= 0 {
		cfg.Budget = 60 * time.Second
		if rt {
			cfg.Budget = 20 * time.Second
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	ccfg := harness.ClusterConfig{
		Seed: cfg.Seed, Backend: cfg.Backend, Nodes: cfg.Nodes,
		Kind: cfg.Kind, Metrics: reg,
	}
	if cfg.Kind != harness.KindMonolithic {
		ccfg.Contracts = func(network.Addr) *verify.Checker {
			return verify.NewChecker(verify.ModeRecord)
		}
	}
	cl := harness.BuildCluster(ccfg)
	defer cl.Close()

	wd := faults.NewWatchdog()
	runs := make([]*nodeRun, 0, cfg.Nodes)
	cl.Exec(func() {
		wd.BindMetrics(reg.Scope("watchdog"))
		inj := faults.New(cl.Sim, cl.Topo, cfg.Seed+1000)
		inj.BindMetrics(reg.Scope("faults"))
		inj.MustApply(cfg.Scenario.Build(cfg.Nodes))
		members := make([]network.Addr, 0, cfg.Nodes)
		for _, h := range cl.Hosts {
			members = append(members, h.Addr)
		}
		for i := range cl.Hosts {
			h := &cl.Hosts[i]
			n, err := NewNode(h.B, h.Addr, h.Stack, NodeConfig{
				Seed:    cfg.Seed,
				Metrics: reg.Scope(fmt.Sprintf("n%d/overlay", h.Addr)),
			})
			if err != nil {
				panic(err)
			}
			nr := &nodeRun{addr: h.Addr, node: n}
			runs = append(runs, nr)
			switch cfg.Tier {
			case TierRPC:
				startRPC(nr, members, cfg.Ops)
			case TierDHT:
				nr.dht = NewDHT(n, DHTConfig{
					Metrics: reg.Scope(fmt.Sprintf("n%d/dht", h.Addr)),
				})
				startDHT(nr, cfg.Nodes, cfg.Ops)
			case TierGossip:
				nr.gsp = NewGossip(n, members, GossipConfig{
					Metrics: reg.Scope(fmt.Sprintf("n%d/gossip", h.Addr)),
				})
				startGossip(nr, cfg.Ops)
			default:
				panic("overlay: unknown tier " + string(cfg.Tier))
			}
		}
	})

	base := cl.Sim.Now()
	deadline := base + netsim.Time(cfg.Budget)
	slice := 500 * time.Millisecond
	if rt {
		slice = 10 * time.Millisecond
	}
	for cl.Sim.Now() < deadline {
		done := false
		cl.Exec(func() { done = allDone(cfg.Tier, runs, cfg.Nodes*cfg.Ops) })
		if done {
			break
		}
		cl.Sim.RunFor(slice)
	}

	var res *RunResult
	cl.Exec(func() { res = summarize(cfg, cl, runs, wd, reg, base) })
	return res
}

// --- tier workloads (all state machines live in node-event context) ---

// startRPC paces Ops echo calls per member, round-robin over the other
// members, and verifies every reply byte-for-byte.
func startRPC(nr *nodeRun, members []network.Addr, ops int) {
	var others []network.Addr
	for _, m := range members {
		if m != nr.addr {
			others = append(others, m)
		}
	}
	n := nr.node
	n.Handle(KindEcho, func(_ network.Addr, p []byte) []byte { return p })
	// 250ms pacing stretches the call window past the first churn
	// RouterPause (2s–3.5s), so the churn scenario actually exercises
	// RPC retries instead of finishing before the fault arrives.
	nr.pacer = n.B.Every(250*time.Millisecond, func() {
		if nr.issued >= ops {
			nr.pacer.Stop()
			return
		}
		nr.issued++
		to := others[(int(nr.addr)+nr.issued)%len(others)]
		payload := fmt.Appendf(nil, "echo-%d-%d-padding-to-make-the-frame-nontrivial", nr.addr, nr.issued)
		start := n.B.Now()
		n.Call(to, KindEcho, payload, 2*time.Second, func(resp []byte, err error) {
			if err != nil {
				nr.missed++
				nr.checkDone(ops)
				return
			}
			if !bytes.Equal(resp, payload) {
				nr.noteWrong(payload, resp)
			} else {
				nr.okOps++
			}
			nr.lats = append(nr.lats, time.Duration(n.B.Now()-start))
			nr.checkDone(ops)
		})
	})
}

// startDHT staggers the member's bootstrap join, then stores Ops keys
// under its own prefix and fetches the ring successor's keys —
// sequential, completion-paced, hop counts recorded per lookup.
func startDHT(nr *nodeRun, nodes, ops int) {
	n := nr.node
	succ := network.Addr(int(nr.addr)%nodes + 1)
	n.B.Schedule(time.Duration(nr.addr)*50*time.Millisecond, func() {
		nr.dht.Join([]network.Addr{1, succ}, nil)
	})
	// Stores wait for a global bootstrap barrier: a member that stores
	// the instant its own join finishes would pick replicas from a
	// membership that hasn't finished arriving, and the true k-closest
	// member for a key might not be in the DHT yet.
	n.B.Schedule(3*time.Second, func() {
		nr.phase = 1
		nr.dhtNext(nodes, ops)
	})
}

func dhtKey(owner network.Addr, i int) string  { return fmt.Sprintf("n%d/k%d", owner, i) }
func dhtValue(key string) []byte              { return []byte("v:" + key) }

func (nr *nodeRun) dhtNext(nodes, ops int) {
	succ := network.Addr(int(nr.addr)%nodes + 1)
	switch nr.phase {
	case 1: // store own keys
		if nr.opIdx >= ops {
			nr.phase, nr.opIdx = 2, 0
			// Let the rest of the membership land its stores (and any
			// fault window pass) before reading keys back — immediate
			// gets would measure the stagger, not the DHT.
			nr.node.B.Schedule(8*time.Second, func() { nr.dhtNext(nodes, ops) })
			return
		}
		key := dhtKey(nr.addr, nr.opIdx)
		nr.opIdx++
		nr.issued++
		nr.dht.Store(key, dhtValue(key), func(stored, rounds int) {
			nr.hops = append(nr.hops, rounds)
			if stored > 0 {
				nr.okOps++
			} else {
				nr.missed++
			}
			nr.dhtNext(nodes, ops)
		})
	case 2: // fetch the successor's keys
		if nr.opIdx >= ops {
			nr.phase = 3
			nr.checkDone(2 * ops)
			return
		}
		key := dhtKey(succ, nr.opIdx)
		nr.opIdx++
		nr.issued++
		nr.dht.Get(key, func(value []byte, rounds int, found bool) {
			nr.hops = append(nr.hops, rounds)
			switch {
			case !found:
				nr.missed++
			case !bytes.Equal(value, dhtValue(key)):
				nr.noteWrong(dhtValue(key), value)
			default:
				nr.okOps++
			}
			nr.dhtNext(nodes, ops)
		})
	}
}

// startGossip paces Ops rumor publications per member; dissemination
// and repair run on the gossip layer's own timers.
func startGossip(nr *nodeRun, ops int) {
	nr.pacer = nr.node.B.Every(200*time.Millisecond, func() {
		if nr.issued >= ops {
			nr.pacer.Stop()
			return
		}
		nr.issued++
		nr.gsp.Publish(fmt.Appendf(nil, "r-%d-%d", nr.addr, nr.issued))
	})
}

func (nr *nodeRun) noteWrong(want, got []byte) {
	nr.wrong++
	if nr.wrongWant == nil {
		nr.wrongWant = append([]byte(nil), want...)
		nr.wrongGot = append([]byte(nil), got...)
	}
}

func (nr *nodeRun) checkDone(total int) {
	if nr.okOps+nr.missed+nr.wrong >= total {
		nr.doneFlag = true
	}
}

// allDone runs at an Exec barrier, where cross-member reads are safe.
func allDone(tier Tier, runs []*nodeRun, totalRumors int) bool {
	for _, nr := range runs {
		switch tier {
		case TierGossip:
			if nr.issued < totalRumors/len(runs) || nr.gsp.Count() < totalRumors {
				return false
			}
		default:
			if !nr.doneFlag {
				return false
			}
		}
	}
	return true
}

// --- summary (Exec barrier: all shards stopped, cross-member reads ok) ---

func summarize(cfg RunConfig, cl *harness.Cluster, runs []*nodeRun, wd *faults.Watchdog,
	reg *metrics.Registry, base netsim.Time) *RunResult {
	res := &RunResult{Tier: cfg.Tier, Scenario: cfg.Scenario.Name, Reg: reg,
		Elapsed: time.Duration(cl.Sim.Now() - base)}

	var hops []int
	var lats []time.Duration
	var framesOut uint64
	for _, nr := range runs {
		res.Issued += nr.issued
		res.Resolved += nr.okOps
		res.Missed += nr.missed
		hops = append(hops, nr.hops...)
		lats = append(lats, nr.lats...)
		fo, _ := nr.node.MsgStats()
		framesOut += fo
		_, _, _, retries, dups := nr.node.CallStats()
		res.Retries += retries
		res.DupReplies += dups
		if nr.wrong > 0 {
			// A wrong payload is never acceptable, faults or not — the
			// watchdog renders it as a stream-divergence violation.
			wd.CheckComplete(fmt.Sprintf("n%d/%s/value", nr.addr, cfg.Tier), nr.wrongWant, nr.wrongGot)
		}
	}
	sort.Ints(hops)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.HopP50, res.HopP99 = pctInt(hops, 50), pctInt(hops, 99)
	res.LatP50, res.LatP99 = pctDur(lats, 50), pctDur(lats, 99)

	if cfg.Tier == TierGossip {
		summarizeGossip(cfg, runs, wd, res)
	}
	if res.Issued > 0 {
		res.MsgsPerOp = float64(framesOut) / float64(res.Issued)
	}
	// Healing scenarios owe a fully resolved workload: every RPC/DHT op
	// answered (misses allowed only while faults were live — by the end
	// of the budget the retry machinery must have drained the backlog
	// into resolutions, not left calls hanging).
	if cfg.Scenario.Heals && cfg.Tier != TierGossip {
		for _, nr := range runs {
			if !nr.doneFlag {
				wd.CheckComplete(fmt.Sprintf("n%d/%s/resolved", nr.addr, cfg.Tier),
					[]byte("all-ops-resolved"), []byte{})
			}
		}
	}
	for _, h := range cl.Hosts {
		if ck := cl.Checkers[h.Addr]; ck != nil {
			wd.CheckContracts(fmt.Sprintf("n%d", h.Addr), ck)
		}
	}
	res.Violations = append(res.Violations, wd.Violations()...)
	res.Snap = reg.Snapshot()
	return res
}

// summarizeGossip computes per-rumor convergence: publish stamp at the
// origin, arrival stamps everywhere else, convergence = the gap to the
// last member. An unconverged rumor in a healing scenario is a
// violation — anti-entropy must have repaired it after the heal.
func summarizeGossip(cfg RunConfig, runs []*nodeRun, wd *faults.Watchdog, res *RunResult) {
	var conv []time.Duration
	converged := 0
	for _, origin := range runs {
		for seq := uint32(1); seq <= uint32(origin.issued); seq++ {
			pub, ok := origin.gsp.Have(origin.addr, seq)
			if !ok {
				continue
			}
			var last netsim.Time
			all := true
			for _, nr := range runs {
				arr, have := nr.gsp.Have(origin.addr, seq)
				if !have {
					all = false
					break
				}
				if arr > last {
					last = arr
				}
			}
			if !all {
				if cfg.Scenario.Heals {
					wd.CheckComplete(fmt.Sprintf("rumor %d/%d disseminated", origin.addr, seq),
						[]byte("everywhere"), []byte{})
				}
				continue
			}
			converged++
			conv = append(conv, time.Duration(last-pub))
		}
	}
	sort.Slice(conv, func(i, j int) bool { return conv[i] < conv[j] })
	res.Resolved = converged
	res.Missed = res.Issued - converged
	res.ConvergeP50 = pctDur(conv, 50)
	if len(conv) > 0 {
		res.ConvergeMax = conv[len(conv)-1]
	}
}

// pctDur is nearest-rank over an ascending slice.
func pctDur(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func pctInt(sorted []int, p int) int {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
