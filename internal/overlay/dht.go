package overlay

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
)

// DHTConfig tunes one DHT member.
type DHTConfig struct {
	// K is the bucket width and result-set size (default 4 — sized for
	// 8-member experiment clusters, not planet-scale tables).
	K int
	// Alpha is the lookup parallelism: queries in flight per round
	// (default 2).
	Alpha int
	// MaxRounds bounds an iterative lookup so it terminates under
	// partitions (default 16).
	MaxRounds int
	// CallDeadline is the overall RPC deadline per query (default 1s).
	CallDeadline time.Duration
	// Metrics, when non-nil, adopts the DHT's instruments.
	Metrics *metrics.Scope
}

func (c DHTConfig) withDefaults() DHTConfig {
	if c.K <= 0 {
		c.K = 4
	}
	if c.Alpha <= 0 {
		c.Alpha = 2
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 16
	}
	if c.CallDeadline <= 0 {
		c.CallDeadline = time.Second
	}
	return c
}

// DHT is a Kademlia-style distributed hash table member: a routing
// table of k-buckets over the XOR metric (id.go), a local key/value
// store, and iterative FIND_NODE/STORE/GET lookups built on the node's
// Call primitive. Lookups proceed in rounds — up to Alpha queries in
// flight, a barrier per round — so the per-lookup hop count is simply
// the number of rounds, comparable across stacks and scenarios.
type DHT struct {
	n   *Node
	id  ID
	cfg DHTConfig

	buckets [160][]network.Addr
	store   map[string][]byte

	lookups, lookupRounds metrics.Counter
	getHits, getMisses    metrics.Counter
	served                metrics.Counter
	tableSize             metrics.Gauge
}

// NewDHT attaches a DHT member to a node runtime and registers its
// message handlers. Call under the backend lock.
func NewDHT(n *Node, cfg DHTConfig) *DHT {
	d := &DHT{n: n, id: NodeID(n.Addr()), cfg: cfg.withDefaults(), store: make(map[string][]byte)}
	sc := cfg.Metrics
	sc.Register("lookups", &d.lookups)
	sc.Register("lookup_rounds", &d.lookupRounds)
	sc.Register("get_hits", &d.getHits)
	sc.Register("get_misses", &d.getMisses)
	sc.Register("queries_served", &d.served)
	sc.Register("table_size", &d.tableSize)
	n.Handle(KindFindNode, d.serveFindNode)
	n.Handle(KindStore, d.serveStore)
	n.Handle(KindGet, d.serveGet)
	return d
}

// --- routing table ---

// Observe records that the member at addr is alive: it moves to the
// tail of its k-bucket, entering if the bucket has room. The classic
// simplification applies — a full bucket keeps its oldest members
// rather than probing them — which is deterministic and adequate at
// experiment scale.
func (d *DHT) Observe(addr network.Addr) {
	if addr == d.n.Addr() {
		return
	}
	i := d.id.bucketIndex(NodeID(addr))
	if i < 0 {
		return
	}
	b := d.buckets[i]
	for j, a := range b {
		if a == addr {
			d.buckets[i] = append(append(b[:j:j], b[j+1:]...), addr)
			return
		}
	}
	if len(b) < d.cfg.K {
		d.buckets[i] = append(b, addr)
		d.tableSize.Add(1)
	}
}

// closest returns up to max members nearest target from the routing
// table plus this member itself, closest first. Bucket slices iterate
// in insertion order, so the result is deterministic.
func (d *DHT) closest(target ID, max int) []network.Addr {
	addrs := []network.Addr{d.n.Addr()}
	for i := range d.buckets {
		addrs = append(addrs, d.buckets[i]...)
	}
	sortByDistance(addrs, target)
	if len(addrs) > max {
		addrs = addrs[:max]
	}
	return addrs
}

// TableSize reports how many members the routing table holds.
func (d *DHT) TableSize() int {
	total := 0
	for i := range d.buckets {
		total += len(d.buckets[i])
	}
	return total
}

// --- server side ---

func (d *DHT) serveFindNode(from network.Addr, payload []byte) []byte {
	d.served.Inc()
	d.Observe(from)
	if len(payload) != len(ID{}) {
		return appendAddrs(nil, nil)
	}
	var target ID
	copy(target[:], payload)
	return appendAddrs(nil, d.closest(target, d.cfg.K))
}

func (d *DHT) serveStore(from network.Addr, payload []byte) []byte {
	d.served.Inc()
	d.Observe(from)
	key, rest, ok := readBytes(payload)
	if !ok {
		return []byte{0}
	}
	val, _, ok := readBytes(rest)
	if !ok {
		return []byte{0}
	}
	d.store[string(key)] = append([]byte(nil), val...)
	return []byte{1}
}

func (d *DHT) serveGet(from network.Addr, payload []byte) []byte {
	d.served.Inc()
	d.Observe(from)
	key, _, ok := readBytes(payload)
	if !ok {
		return []byte{0}
	}
	if v, found := d.store[string(key)]; found {
		return appendBytes([]byte{1}, v)
	}
	return appendAddrs([]byte{0}, d.closest(KeyID(string(key)), d.cfg.K))
}

// Stored reports whether key is held locally (tests, demos).
func (d *DHT) Stored(key string) ([]byte, bool) {
	v, ok := d.store[key]
	return v, ok
}

// --- iterative lookups ---

// lookup is one iterative query's state machine. It lives entirely in
// node-event context: rounds advance only when every call of the
// previous round has resolved (reply or deadline).
type lookup struct {
	target   ID
	key      string // non-empty: GET semantics over KindGet
	short    []network.Addr
	queried  map[network.Addr]bool
	inflight int
	rounds   int
	finished bool
	value    []byte
	found    bool
	done     func(closest []network.Addr, rounds int, value []byte, found bool)
}

// Join seeds the routing table and runs a self-lookup to populate it —
// the standard Kademlia bootstrap. done (optional) fires when the
// self-lookup completes.
func (d *DHT) Join(seeds []network.Addr, done func()) {
	for _, s := range seeds {
		d.Observe(s)
	}
	d.Lookup(d.id, func([]network.Addr, int, bool) {
		if done != nil {
			done()
		}
	})
}

// Lookup runs an iterative FIND_NODE toward target and reports the k
// closest members found and the hop (round) count. ok is false when
// the lookup hit MaxRounds without converging.
func (d *DHT) Lookup(target ID, done func(closest []network.Addr, rounds int, ok bool)) {
	d.start(&lookup{
		target: target,
		done: func(closest []network.Addr, rounds int, _ []byte, _ bool) {
			done(closest, rounds, rounds < d.cfg.MaxRounds)
		},
	})
}

// Get resolves key: it walks toward KeyID(key) querying KindGet, and
// finishes early as soon as any member returns the value.
func (d *DHT) Get(key string, done func(value []byte, rounds int, found bool)) {
	d.start(&lookup{
		target: KeyID(key),
		key:    key,
		done: func(_ []network.Addr, rounds int, value []byte, found bool) {
			if found {
				d.getHits.Inc()
			} else {
				d.getMisses.Inc()
			}
			done(value, rounds, found)
		},
	})
}

// Store writes key=value onto the k members closest to KeyID(key):
// one lookup to locate them, then a STORE fan-out. done reports how
// many replicas acknowledged and the lookup's hop count.
func (d *DHT) Store(key string, value []byte, done func(stored int, rounds int)) {
	if done == nil {
		done = func(int, int) {}
	}
	payload := appendBytes(appendBytes(nil, []byte(key)), value)
	d.Lookup(KeyID(key), func(closest []network.Addr, rounds int, _ bool) {
		targets := closest
		if len(targets) > d.cfg.K {
			targets = targets[:d.cfg.K]
		}
		stored, pending := 0, 0
		finish := func() {
			if pending == 0 {
				done(stored, rounds)
			}
		}
		for _, t := range targets {
			if t == d.n.Addr() {
				d.store[key] = append([]byte(nil), value...)
				stored++
				continue
			}
			pending++
			d.n.Call(t, KindStore, payload, d.cfg.CallDeadline, func(resp []byte, err error) {
				pending--
				if err == nil && len(resp) == 1 && resp[0] == 1 {
					stored++
				}
				finish()
			})
		}
		finish()
	})
}

func (d *DHT) start(lk *lookup) {
	d.lookups.Inc()
	lk.queried = map[network.Addr]bool{d.n.Addr(): true}
	lk.short = d.closest(lk.target, 3*d.cfg.K)
	d.step(lk)
}

func (d *DHT) step(lk *lookup) {
	if lk.finished {
		return
	}
	var batch []network.Addr
	topQueried := true
	for i, a := range lk.short {
		if i < d.cfg.K && !lk.queried[a] {
			topQueried = false
		}
		if len(batch) < d.cfg.Alpha && !lk.queried[a] {
			batch = append(batch, a)
		}
	}
	if len(batch) == 0 || topQueried || lk.rounds >= d.cfg.MaxRounds {
		d.finish(lk)
		return
	}
	lk.rounds++
	d.lookupRounds.Inc()
	for _, a := range batch {
		a := a
		lk.queried[a] = true
		lk.inflight++
		if lk.key != "" {
			d.n.Call(a, KindGet, appendBytes(nil, []byte(lk.key)), d.cfg.CallDeadline,
				func(resp []byte, err error) { d.onGetReply(lk, a, resp, err) })
		} else {
			d.n.Call(a, KindFindNode, lk.target[:], d.cfg.CallDeadline,
				func(resp []byte, err error) { d.onFindReply(lk, a, resp, err) })
		}
	}
}

func (d *DHT) onFindReply(lk *lookup, from network.Addr, resp []byte, err error) {
	lk.inflight--
	if err == nil {
		d.Observe(from)
		if addrs, _, ok := readAddrs(resp); ok {
			d.merge(lk, addrs)
		}
	}
	if lk.inflight == 0 {
		d.step(lk)
	}
}

func (d *DHT) onGetReply(lk *lookup, from network.Addr, resp []byte, err error) {
	lk.inflight--
	if err == nil && len(resp) >= 1 {
		d.Observe(from)
		if resp[0] == 1 {
			if v, _, ok := readBytes(resp[1:]); ok && !lk.finished {
				lk.value = append([]byte(nil), v...)
				lk.found = true
				d.finish(lk)
				return
			}
		} else if addrs, _, ok := readAddrs(resp[1:]); ok {
			d.merge(lk, addrs)
		}
	}
	if lk.inflight == 0 {
		d.step(lk)
	}
}

// merge folds newly learned members into the shortlist, re-sorts by
// distance and trims — the shortlist stays a bounded frontier.
func (d *DHT) merge(lk *lookup, addrs []network.Addr) {
	have := make(map[network.Addr]bool, len(lk.short))
	for _, a := range lk.short {
		have[a] = true
	}
	for _, a := range addrs {
		d.Observe(a)
		if !have[a] {
			have[a] = true
			lk.short = append(lk.short, a)
		}
	}
	sortByDistance(lk.short, lk.target)
	if len(lk.short) > 3*d.cfg.K {
		lk.short = lk.short[:3*d.cfg.K]
	}
}

func (d *DHT) finish(lk *lookup) {
	if lk.finished {
		return
	}
	lk.finished = true
	closest := lk.short
	if len(closest) > d.cfg.K {
		closest = closest[:d.cfg.K]
	}
	lk.done(closest, lk.rounds, lk.value, lk.found)
}
