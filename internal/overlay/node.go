package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/transport"
)

// DefaultPort is the overlay listen port on every member.
const DefaultPort = 700

// ErrDeadline is the terminal error of a Call whose overall deadline
// elapsed before any response arrived.
var ErrDeadline = errors.New("overlay: call deadline exceeded")

// Handler serves one message kind: it receives the sender's address
// and the request payload and returns the response payload. For casts
// the return value is discarded. Handlers run inside connection
// callbacks — backend lock held, node state free to touch, no blocking.
type Handler func(from network.Addr, payload []byte) []byte

// NodeConfig tunes one overlay node.
type NodeConfig struct {
	// Seed derives the node-local RNG (retry jitter, gossip peer
	// choice). Node code never draws from the backend's shared RNG, so
	// shard placement cannot perturb a decision; the cluster passes its
	// seed and each node mixes in its own address.
	Seed int64
	// Port is the overlay listen port (default DefaultPort).
	Port uint16
	// AttemptTimeout is the per-attempt response timeout (default 250ms).
	AttemptTimeout time.Duration
	// MaxAttempts bounds send attempts per call, first try included
	// (default 3).
	MaxAttempts int
	// RetryBackoff is the base retry delay (default 50ms), doubled per
	// attempt with jitter in [0, backoff/2] drawn from the node RNG.
	RetryBackoff time.Duration
	// Metrics, when non-nil, adopts the node's instruments (a nil
	// scope costs nothing).
	Metrics *metrics.Scope
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Port == 0 {
		c.Port = DefaultPort
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 250 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return c
}

// Node is the shared runtime of every overlay tier: message framing
// over transport.Conn, dial-on-demand connection management, and the
// request/response core with deadlines, retries and duplicate
// suppression. All state is touched only from the node's own backend
// events (its timers, its connections' callbacks) or from driver code
// holding the backend lock — the single-writer rule that keeps a
// sharded cluster race-free with no node-level locking.
type Node struct {
	B     netsim.Backend
	addr  network.Addr
	stack transport.Stack
	cfg   NodeConfig
	rng   *rand.Rand

	handlers map[MsgKind]Handler
	peers    map[network.Addr]*peer // outbound, dial-on-demand
	inbound  []*peer
	calls    map[uint64]*call
	nextReq  uint64

	// Instruments (adopted by cfg.Metrics when set).
	framesOut, framesIn   metrics.Counter
	bytesOut, bytesIn     metrics.Counter
	callsTotal, callsOK   metrics.Counter
	deadlineMiss          metrics.Counter
	retries, dupReplies   metrics.Counter
	casts, unhandled      metrics.Counter
	dials, dialErrs       metrics.Counter
	accepts, connDrops    metrics.Counter
	codecErrs, outDropped metrics.Counter
}

// NewNode attaches an overlay node to a transport stack. The stack's
// backend b must be the node's own (its shard view on a sharded
// engine). Call under the backend lock.
func NewNode(b netsim.Backend, addr network.Addr, stack transport.Stack, cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	n := &Node{
		B: b, addr: addr, stack: stack, cfg: cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ (int64(addr)+1)*0x7F4A7C159E3779B9)),
		handlers: make(map[MsgKind]Handler),
		peers:    make(map[network.Addr]*peer),
		calls:    make(map[uint64]*call),
	}
	n.bindMetrics(cfg.Metrics)
	if err := stack.Listen(cfg.Port, n.accept); err != nil {
		return nil, fmt.Errorf("overlay: node %d listen: %w", addr, err)
	}
	return n, nil
}

func (n *Node) bindMetrics(sc *metrics.Scope) {
	sc.Register("frames_out", &n.framesOut)
	sc.Register("frames_in", &n.framesIn)
	sc.Register("bytes_out", &n.bytesOut)
	sc.Register("bytes_in", &n.bytesIn)
	sc.Register("calls", &n.callsTotal)
	sc.Register("calls_ok", &n.callsOK)
	sc.Register("deadline_miss", &n.deadlineMiss)
	sc.Register("retries", &n.retries)
	sc.Register("dup_replies", &n.dupReplies)
	sc.Register("casts", &n.casts)
	sc.Register("unhandled", &n.unhandled)
	sc.Register("dials", &n.dials)
	sc.Register("dial_errors", &n.dialErrs)
	sc.Register("accepts", &n.accepts)
	sc.Register("conn_drops", &n.connDrops)
	sc.Register("codec_errors", &n.codecErrs)
	sc.Register("out_dropped", &n.outDropped)
}

// Addr returns the node's network address.
func (n *Node) Addr() network.Addr { return n.addr }

// Rand is the node-local deterministic RNG tiers draw from.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Handle registers the handler for one message kind.
func (n *Node) Handle(kind MsgKind, h Handler) { n.handlers[kind] = h }

// MsgStats exposes the frame counters tiers report messages/op from.
func (n *Node) MsgStats() (framesOut, framesIn uint64) {
	return n.framesOut.Value(), n.framesIn.Value()
}

// CallStats exposes the RPC outcome counters.
func (n *Node) CallStats() (calls, ok, miss, retries, dups uint64) {
	return n.callsTotal.Value(), n.callsOK.Value(), n.deadlineMiss.Value(),
		n.retries.Value(), n.dupReplies.Value()
}

// --- connection management ---

// peer is one transport.Conn wrapped with frame buffers. Outbound
// peers are keyed by address in n.peers; inbound peers answer on the
// connection the request arrived on.
type peer struct {
	addr network.Addr // remote member (0 on inbound until a frame names it)
	conn transport.Conn
	out  []byte // encoded frames not yet accepted by Write
	rbuf []byte // partial inbound frame
	up   bool   // outbound: connected; inbound: always
	dead bool
}

// maxQueued bounds a peer's pending output; a peer that falls further
// behind (a partitioned member) starts shedding frames — the retry
// machinery resends what mattered once the path heals.
const maxQueued = 256 * 1024

func (n *Node) accept(c transport.Conn) {
	n.accepts.Inc()
	p := &peer{conn: c, up: true}
	n.inbound = append(n.inbound, p)
	c.Callbacks(nil,
		func() { n.readable(p) },
		func() { n.flush(p) },
		func(err error) { n.dropPeer(p, err) })
}

// outPeer returns the live outbound peer for addr, dialling if needed.
func (n *Node) outPeer(addr network.Addr) *peer {
	if p := n.peers[addr]; p != nil && !p.dead {
		return p
	}
	n.dials.Inc()
	c, err := n.stack.Dial(addr, n.cfg.Port)
	if err != nil {
		n.dialErrs.Inc()
		return nil
	}
	p := &peer{addr: addr, conn: c}
	n.peers[addr] = p
	c.Callbacks(
		func() { p.up = true; n.flush(p) },
		func() { n.readable(p) },
		func() { n.flush(p) },
		func(err error) { n.dropPeer(p, err) })
	return p
}

func (n *Node) dropPeer(p *peer, err error) {
	if p.dead {
		return
	}
	p.dead = true
	p.out = nil
	if err != nil {
		n.connDrops.Inc()
	}
	if p.addr != 0 && n.peers[p.addr] == p {
		delete(n.peers, p.addr)
	}
}

// send frames one message to addr, dialling on demand. Loss here (no
// route, dead peer, shed queue) is not an error: request/response
// callers recover through the retry machinery, casts are best-effort
// by design.
func (n *Node) send(to network.Addr, class uint8, kind MsgKind, reqID uint64, payload []byte) {
	p := n.outPeer(to)
	if p == nil {
		return
	}
	n.sendOn(p, class, kind, reqID, payload)
}

// sendOn frames one message onto an existing peer connection.
func (n *Node) sendOn(p *peer, class uint8, kind MsgKind, reqID uint64, payload []byte) {
	if p.dead || len(p.out) > maxQueued {
		n.outDropped.Inc()
		return
	}
	n.framesOut.Inc()
	n.bytesOut.Add(uint64(headerLen + len(payload)))
	p.out = appendFrame(p.out, class, kind, reqID, n.addr, payload)
	n.flush(p)
}

func (n *Node) flush(p *peer) {
	if !p.up || p.dead {
		return
	}
	for len(p.out) > 0 {
		w := p.conn.Write(p.out)
		if w == 0 {
			return
		}
		p.out = p.out[w:]
	}
	p.out = nil
}

func (n *Node) readable(p *peer) {
	if p.dead {
		return
	}
	p.rbuf = append(p.rbuf, p.conn.ReadAll()...)
	for {
		f, used, err := parseFrame(p.rbuf)
		if err != nil {
			// The stream cannot be resynchronized after a codec error:
			// count it and abandon the connection.
			n.codecErrs.Inc()
			n.dropPeer(p, err)
			p.conn.Close()
			return
		}
		if used == 0 {
			return
		}
		p.rbuf = p.rbuf[used:]
		if p.addr == 0 {
			p.addr = f.from
		}
		n.dispatch(p, f)
	}
}

func (n *Node) dispatch(p *peer, f frame) {
	n.framesIn.Inc()
	n.bytesIn.Add(uint64(headerLen + len(f.payload)))
	switch f.class {
	case classResponse:
		c := n.calls[f.reqID]
		if c == nil || c.done {
			// A late or repeated reply: the attempt it answers was
			// already resolved by an earlier reply, a retry, or the
			// deadline. Suppressed, counted, never delivered twice.
			n.dupReplies.Inc()
			return
		}
		n.complete(c, f.payload)
	case classRequest:
		h := n.handlers[f.kind]
		if h == nil {
			n.unhandled.Inc()
			return
		}
		resp := h(f.from, f.payload)
		n.sendOn(p, classResponse, f.kind, f.reqID, resp)
	case classCast:
		h := n.handlers[f.kind]
		if h == nil {
			n.unhandled.Inc()
			return
		}
		h(f.from, f.payload)
	default:
		n.codecErrs.Inc()
	}
}

// --- request/response core ---

// call is one logical request: one reqID across every retry, so any
// response — including a late one racing a retransmission — resolves
// it exactly once.
type call struct {
	id        uint64
	to        network.Addr
	kind      MsgKind
	payload   []byte
	cb        func([]byte, error)
	attempts  int
	done      bool
	attemptT  netsim.Timer
	deadlineT netsim.Timer
}

// Cast sends a one-way message (no response, no retries).
func (n *Node) Cast(to network.Addr, kind MsgKind, payload []byte) {
	n.casts.Inc()
	n.send(to, classCast, kind, 0, payload)
}

// Call issues a request to the member at addr and invokes cb exactly
// once: with the response payload, or with ErrDeadline once the
// overall deadline elapses. Attempts are re-sent on a per-attempt
// timeout with exponentially backed-off, jittered delays (bounded by
// MaxAttempts); a response to ANY attempt completes the call, and
// later replies are suppressed and counted. Call must run inside a
// backend event or under the backend lock.
func (n *Node) Call(to network.Addr, kind MsgKind, payload []byte, deadline time.Duration, cb func([]byte, error)) {
	n.callsTotal.Inc()
	n.nextReq++
	c := &call{id: n.nextReq, to: to, kind: kind, payload: payload, cb: cb}
	n.calls[c.id] = c
	c.deadlineT = n.B.ScheduleTimer(deadline, func() { n.miss(c) })
	n.attempt(c)
}

func (n *Node) attempt(c *call) {
	if c.done {
		return
	}
	c.attempts++
	n.send(c.to, classRequest, c.kind, c.id, c.payload)
	if c.attempts >= n.cfg.MaxAttempts {
		// Out of retries: the call now rides on the deadline timer
		// alone — a straggling reply can still complete it.
		return
	}
	c.attemptT = n.B.ScheduleTimer(n.cfg.AttemptTimeout, func() { n.attemptTimeout(c) })
}

func (n *Node) attemptTimeout(c *call) {
	if c.done {
		return
	}
	n.retries.Inc()
	backoff := n.cfg.RetryBackoff << uint(c.attempts-1)
	backoff += time.Duration(n.rng.Int63n(int64(backoff/2) + 1))
	c.attemptT = n.B.ScheduleTimer(backoff, func() { n.attempt(c) })
}

func (n *Node) complete(c *call, resp []byte) {
	c.done = true
	delete(n.calls, c.id)
	c.attemptT.Stop()
	c.deadlineT.Stop()
	n.callsOK.Inc()
	c.cb(resp, nil)
}

func (n *Node) miss(c *call) {
	if c.done {
		return
	}
	c.done = true
	delete(n.calls, c.id)
	c.attemptT.Stop()
	n.deadlineMiss.Inc()
	c.cb(nil, ErrDeadline)
}

// PeerAddrs lists the node's live outbound peers, sorted (tests).
func (n *Node) PeerAddrs() []network.Addr {
	addrs := make([]network.Addr, 0, len(n.peers))
	for a := range n.peers {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}
