// Package overlay builds application-layer protocols on top of the
// stack-agnostic transport.Conn seam — the first consumers of either
// TCP implementation that are not bulk byte-stream flows. Three tiers
// share one node/runtime core:
//
//   - Node (node.go) is the runtime every tier rides: framed messages
//     over transport.Conn with a versioned codec (codec.go), dial-on-
//     demand connection management, and a request/response RPC layer
//     with per-attempt timeouts, jittered-backoff retries, duplicate
//     suppression and deadline-miss accounting. This IS the RPC tier;
//     the other two are built from its Call/Cast primitives.
//   - DHT (dht.go) is a Kademlia-style distributed hash table: 160-bit
//     node IDs derived from member addresses, k-buckets, and iterative
//     FIND_NODE/STORE/GET lookups with per-lookup hop counts.
//   - Gossip (gossip.go) is an epidemic pub-sub layer: rumor push with
//     bounded fanout plus periodic anti-entropy digest exchange, with
//     per-rumor arrival stamps so convergence time is measurable.
//
// Everything is event-driven: state machines advance only inside
// backend timers and connection callbacks, never goroutines, so the
// identical overlay code runs deterministically on "sim" and
// "sharded:N" (byte-identical results at any GOMAXPROCS — each node's
// state is touched only from its own shard) and in wall time on the
// "chan" and "udp" backends. Per-node randomness (gossip peer choice,
// retry jitter) comes from node-local seeded RNGs, never the backend's
// shared source, so shard placement cannot perturb a decision.
//
// Cluster (cluster.go) assembles an N-member harness ring with one
// stack per node and runs one overlay cell: a tier workload under a
// fault scenario (scenario.go — the E10 vocabulary: bursty loss,
// partition+heal, and member churn as RouterPause windows), with
// lookup hops, convergence ticks, deadline-miss rates and messages/op
// folded into a deterministic Result. Experiment E13 matrixes this
// over {stack × tier × scenario}; docs/OVERLAYS.md carries the
// protocol specs and the invariants E13 asserts.
package overlay
