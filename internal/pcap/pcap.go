// Package pcap writes pcapng capture files (the format Wireshark and
// tshark read natively) from simulated link traffic. The writer is
// hand-rolled against the pcapng specification — Section Header Block,
// one Interface Description Block per simulated link, and one Enhanced
// Packet Block per transmitted frame — with no dependencies beyond the
// standard library.
//
// Frames are written with LINKTYPE_USER0 (there is no real media
// underneath; the bytes are the simulator's wire format, which
// Wireshark shows as raw data), nanosecond timestamps taken from the
// simulator's virtual clock, and an opt_comment per packet carrying the
// causal trace ID and the decoded sublayer summary. Because every
// input is virtual — time, interface order, frame bytes — two
// same-seed runs produce byte-identical capture files.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// pcapng block types and option codes used here.
const (
	blockSHB = 0x0A0D0D0A
	blockIDB = 0x00000001
	blockEPB = 0x00000006

	byteOrderMagic = 0x1A2B3C4D

	optEnd     = 0
	optComment = 1
	optIfName  = 2 // if_name
	optTsresol = 9 // if_tsresol

	// linktypeUser0 is LINKTYPE_USER0: reserved for private use, which
	// is exactly what a simulator's custom wire format is.
	linktypeUser0 = 147
)

// Writer emits one pcapng section. Interfaces are registered lazily:
// the first packet naming a new interface writes its Interface
// Description Block before the packet, so interface IDs follow
// first-transmission order (deterministic under a deterministic
// simulator).
type Writer struct {
	w      io.Writer
	ifaces map[string]uint32
	order  []string
	err    error
	scratch []byte
}

// NewWriter writes the Section Header Block and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	pw := &Writer{w: w, ifaces: make(map[string]uint32)}
	// SHB body: magic, version 1.0, section length unknown (-1).
	body := make([]byte, 16)
	binary.LittleEndian.PutUint32(body[0:], byteOrderMagic)
	binary.LittleEndian.PutUint16(body[4:], 1) // major
	binary.LittleEndian.PutUint16(body[6:], 0) // minor
	binary.LittleEndian.PutUint64(body[8:], 0xFFFFFFFFFFFFFFFF)
	pw.block(blockSHB, body)
	return pw, pw.err
}

// Err returns the first write error, if any. Once set, every later
// call is a no-op returning the same error.
func (pw *Writer) Err() error { return pw.err }

// WritePacket appends one frame transmitted on the named interface at
// virtual time ns (nanoseconds). comment, when non-empty, becomes the
// packet's opt_comment — Wireshark shows it in the packet details and
// `tshark -T fields -e pkt_comment` extracts it.
func (pw *Writer) WritePacket(iface string, ns int64, comment string, frame []byte) error {
	if pw.err != nil {
		return pw.err
	}
	id, ok := pw.ifaces[iface]
	if !ok {
		id = uint32(len(pw.order))
		pw.ifaces[iface] = id
		pw.order = append(pw.order, iface)
		pw.writeIDB(iface)
		if pw.err != nil {
			return pw.err
		}
	}
	// EPB fixed part: interface, timestamp hi/lo, captured len, orig len.
	body := pw.scratch[:0]
	body = appendU32(body, id)
	body = appendU32(body, uint32(uint64(ns)>>32))
	body = appendU32(body, uint32(uint64(ns)))
	body = appendU32(body, uint32(len(frame)))
	body = appendU32(body, uint32(len(frame)))
	body = appendPadded(body, frame)
	if comment != "" {
		body = appendOption(body, optComment, []byte(comment))
		body = appendU32(body, 0) // opt_endofopt
	}
	pw.scratch = body
	pw.block(blockEPB, body)
	return pw.err
}

// writeIDB emits the Interface Description Block for a new interface:
// LINKTYPE_USER0, unlimited snaplen, nanosecond timestamp resolution,
// and the simulated link's name.
func (pw *Writer) writeIDB(name string) {
	body := make([]byte, 8, 8+4+len(name)+8)
	binary.LittleEndian.PutUint16(body[0:], linktypeUser0)
	// body[2:4] reserved, body[4:8] snaplen 0 = no limit.
	body = appendOption(body, optIfName, []byte(name))
	body = appendOption(body, optTsresol, []byte{9}) // 10^-9 s
	body = appendU32(body, 0)                        // opt_endofopt
	pw.block(blockIDB, body)
}

// block frames a body into `type | total length | body | total length`.
func (pw *Writer) block(typ uint32, body []byte) {
	if pw.err != nil {
		return
	}
	total := uint32(12 + len(body))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], typ)
	binary.LittleEndian.PutUint32(hdr[4:], total)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		pw.err = fmt.Errorf("pcap: %w", err)
		return
	}
	if _, err := pw.w.Write(body); err != nil {
		pw.err = fmt.Errorf("pcap: %w", err)
		return
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], total)
	if _, err := pw.w.Write(tail[:]); err != nil {
		pw.err = fmt.Errorf("pcap: %w", err)
	}
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

// appendPadded appends data padded with zeros to a 32-bit boundary, as
// every pcapng variable-length field requires.
func appendPadded(b, data []byte) []byte {
	b = append(b, data...)
	if pad := (4 - len(data)%4) % 4; pad > 0 {
		b = append(b, make([]byte, pad)...)
	}
	return b
}

// appendOption appends one option record: code, length, padded value.
func appendOption(b []byte, code uint16, val []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint16(tmp[0:], code)
	binary.LittleEndian.PutUint16(tmp[2:], uint16(len(val)))
	b = append(b, tmp[:]...)
	return appendPadded(b, val)
}
