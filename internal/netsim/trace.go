package netsim

// Causal-tracing hook points.
//
// netsim owns the hook *types* (so the simulator, links and every layer
// above can emit without importing the collector) while internal/trace
// owns the implementation: a per-simulator Tracer that assigns
// generation-safe packet IDs, keeps a bounded flight-recorder ring and
// reconstructs causal chains. The split avoids an import cycle — trace
// already imports netsim for Time and the packet decoders.
//
// Tracing is off by default: the simulator holds a nil Tracer and every
// emission site guards with a single nil check, so the disabled cost is
// one predictable branch per event and zero allocations (the perf gate
// in `make perfcheck` runs with tracing disabled and must stay green).

// Trace layers. Constants rather than free-form strings so events
// compare and marshal identically across runs.
const (
	LayerLink      = "link"
	LayerNet       = "net"
	LayerTransport = "transport"
)

// Trace verdicts: why a packet (or a whole connection) left the data
// path. Empty means the event is a normal hop, not a terminal outcome.
const (
	VerdictLost       = "lost"        // random link loss
	VerdictQueueDrop  = "queue_drop"  // serializer queue overflow
	VerdictDownDrop   = "down_drop"   // link was administratively down
	VerdictTTLExpired = "ttl_expired" // router hop limit reached
	VerdictNoRoute    = "no_route"    // FIB miss
	VerdictBlackholed = "blackholed"  // data-plane drop filter
	VerdictMalformed  = "malformed"   // undecodable wire bytes
	VerdictDelivered  = "delivered"   // reached its destination protocol
	VerdictTimeout    = "timeout"     // user timeout abort
	VerdictReset      = "reset"       // RST abort
)

// TraceEvent is one typed span event on a packet's causal chain: who
// (Node/Layer), what (Kind/Verdict), when (At, virtual time), and which
// packet (ID, plus the Flow/Seq transport correlators that tie
// retransmissions of the same segment together across distinct wire
// buffers). Events are plain data — the Tracer decides retention.
type TraceEvent struct {
	At Time `json:"at"`
	// ID identifies one wire-buffer incarnation (assigned by the
	// Tracer's stamp; generation-safe: a recycled buffer gets a fresh
	// ID). Zero means the event is not tied to a specific buffer
	// (e.g. a connection-level abort).
	ID uint64 `json:"id"`
	// Flow packs the transport 4-tuple (srcAddr<<48 | dstAddr<<32 |
	// srcPort<<16 | dstPort); zero below the transport layer.
	Flow uint64 `json:"flow,omitempty"`
	// Seq is the transport sequence number when relevant; together with
	// Flow it correlates retransmissions across buffer incarnations.
	Seq uint32 `json:"seq,omitempty"`
	// Len is the wire or payload length in bytes.
	Len int `json:"len,omitempty"`
	// TTL is the datagram hop limit after a router's decrement (network
	// "hop" events only).
	TTL uint8 `json:"ttl,omitempty"`
	// Node names the emitting component ("link2", "n3", "n1/sub").
	Node string `json:"node"`
	// Layer is one of the Layer* constants.
	Layer string `json:"layer"`
	// Kind is the event type ("transmit", "deliver", "corrupt", "dup",
	// "hop", "send", "rexmit", "ack", "rto", "abort", ...).
	Kind string `json:"kind"`
	// Verdict, when non-empty, classifies a terminal outcome.
	Verdict string `json:"verdict,omitempty"`
	// End marks the death of the buffer behind ID: the tracer retires
	// the ID so the backing array can be recycled under a fresh one.
	End bool `json:"end,omitempty"`
}

// Tracer collects trace events for one simulator. Implementations must
// not mutate simulator state, consume simulator randomness or schedule
// events — tracing is strictly observational, so enabling it never
// changes metrics or packet outcomes.
type Tracer interface {
	// Stamp assigns a fresh ID to a wire buffer entering the data path
	// (called where the buffer is allocated/filled). Re-stamping a
	// pointer that is being recycled overwrites the stale mapping,
	// which is what makes IDs generation-safe.
	Stamp(buf []byte) uint64
	// ID returns the current ID of a previously stamped buffer, or
	// stamps it if unseen (a buffer can enter the traced region midway,
	// e.g. raw frames handed straight to a link).
	ID(buf []byte) uint64
	// Emit appends one span event. frame, when non-nil, carries the
	// full wire bytes at link-transmit time for packet capture; the
	// tracer must copy it before returning.
	Emit(ev TraceEvent, frame []byte)
	// Retire drops the ID mapping of a buffer that is about to be
	// recycled without a terminal data-path event (control traffic a
	// router consumes). Events with End set retire implicitly; every
	// other bufpool.Put of a stamped buffer must be preceded by one of
	// the two, or a recycled backing array could inherit a stale ID.
	Retire(buf []byte)
}

// PackFlow packs a transport 4-tuple into the TraceEvent.Flow
// correlator: srcAddr<<48 | dstAddr<<32 | srcPort<<16 | dstPort.
func PackFlow(srcAddr, dstAddr, srcPort, dstPort uint16) uint64 {
	return uint64(srcAddr)<<48 | uint64(dstAddr)<<32 | uint64(srcPort)<<16 | uint64(dstPort)
}

// UnpackFlow splits a Flow correlator back into its 4-tuple.
func UnpackFlow(f uint64) (srcAddr, dstAddr, srcPort, dstPort uint16) {
	return uint16(f >> 48), uint16(f >> 32), uint16(f >> 16), uint16(f)
}

// SetTracer attaches (or with nil detaches) the simulator's tracer.
// Attach before traffic flows; the tracer only sees events emitted
// while attached.
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

// Tracer returns the attached tracer, or nil when tracing is off.
// Emission sites hold the result once per event batch:
//
//	if t := sim.Tracer(); t != nil { t.Emit(...) }
func (s *Simulator) Tracer() Tracer { return s.tracer }
