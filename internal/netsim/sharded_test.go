package netsim

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestShardedScheduleOrdering mirrors TestScheduleOrdering on the
// sharded engine: driver-context schedules execute in time order.
func TestShardedScheduleOrdering(t *testing.T) {
	e := NewSharded(1, 2, nil)
	defer e.Close()
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.RunFor(10 * time.Millisecond)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != Time(10*time.Millisecond) {
		t.Errorf("Now = %v", e.Now())
	}
}

// TestShardedCrossShardDelivery pushes packets across a cut link in
// both directions and checks they arrive intact, in order and at the
// right virtual times.
func TestShardedCrossShardDelivery(t *testing.T) {
	e := NewSharded(7, 2, nil)
	defer e.Close()
	a := e.NodeView(0)
	b := e.NodeView(1)
	var gotB []string
	var atB []Time
	lab := LinkOn(a, LinkConfig{Delay: 5 * time.Millisecond}, func(p *Packet) {
		gotB = append(gotB, string(p.Data))
		atB = append(atB, b.Now())
	}, b)
	a.Schedule(time.Millisecond, func() { lab.Send([]byte("one")) })
	a.Schedule(2*time.Millisecond, func() { lab.Send([]byte("two")) })
	e.RunFor(time.Second)
	if len(gotB) != 2 || gotB[0] != "one" || gotB[1] != "two" {
		t.Fatalf("delivered = %v", gotB)
	}
	if atB[0] != Time(6*time.Millisecond) || atB[1] != Time(7*time.Millisecond) {
		t.Errorf("arrival times = %v, want [6ms 7ms]", atB)
	}
}

// TestShardedZeroDelayCutLinkPanics pins the lookahead precondition: a
// cross-shard link with no propagation delay has zero lookahead and
// must be rejected at wiring time, not discovered as divergence.
func TestShardedZeroDelayCutLinkPanics(t *testing.T) {
	e := NewSharded(1, 2, nil)
	defer e.Close()
	a, b := e.NodeView(0), e.NodeView(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-delay cross-shard link did not panic")
		}
	}()
	LinkOn(a, LinkConfig{}, func(*Packet) {}, b)
}

// TestShardedTornLookahead pins the mailbox horizon invariant: a
// cross-shard delivery can never be scheduled before virtual time its
// destination shard has already executed past. The scenario forces the
// tightest case — a send at the very end of a window whose delivery
// lands exactly one lookahead later — and the engine's flush assertion
// (which panics on violation) is the oracle.
func TestShardedTornLookahead(t *testing.T) {
	e := NewSharded(3, 2, nil)
	defer e.Close()
	a, b := e.NodeView(0), e.NodeView(1)
	const look = 2 * time.Millisecond
	var arrivals []Time
	lab := LinkOn(a, LinkConfig{Delay: look}, func(p *Packet) {
		arrivals = append(arrivals, b.Now())
	}, b)
	// Dense busywork on shard B so its local clock presses against the
	// window horizon while A keeps sending.
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 10000 {
			b.Schedule(100*time.Microsecond, tick)
		}
	}
	b.Schedule(0, tick)
	var sends int
	var send func()
	send = func() {
		lab.Send([]byte{byte(sends)})
		sends++
		if sends < 500 {
			a.Schedule(137*time.Microsecond, send)
		}
	}
	a.Schedule(0, send)
	e.RunFor(time.Second)
	if len(arrivals) != 500 {
		t.Fatalf("arrived %d, want 500", len(arrivals))
	}
	// Beyond not panicking: every arrival honors the lookahead contract
	// arrive ≥ send + delay, with sends every 137µs from t=0.
	for i, at := range arrivals {
		if min := Time(i)*Time(137*time.Microsecond) + Time(look); at < min {
			t.Fatalf("arrival %d at %v, before lookahead floor %v", i, at, min)
		}
	}
}

// TestShardedCancelledAndPendingShardAware is the regression test for
// the shard-aware bookkeeping bugfix: timers scheduled and stopped on
// different shards must aggregate into the same events/cancelled
// counter value and Pending() count the sequential simulator reports
// for the identical schedule, with the per-shard parts summing to the
// whole.
func TestShardedCancelledAndPendingShardAware(t *testing.T) {
	build := func(mk func() (Backend, func() uint64, func() int)) (uint64, int) {
		b, cancelled, pending := mk()
		defer b.Close()
		views := []Backend{b}
		if sh, ok := b.(Sharder); ok {
			views = nil
			for i := 0; i < sh.Shards(); i++ {
				views = append(views, sh.NodeView(i))
			}
		}
		var timers []*Timer
		for i := 0; i < 40; i++ {
			v := views[i%len(views)]
			timers = append(timers, v.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
		}
		for i, tm := range timers {
			if i%3 == 0 {
				tm.Stop()
			}
		}
		return cancelled(), pending()
	}

	reg1 := metrics.New()
	seqCancelled, seqPending := build(func() (Backend, func() uint64, func() int) {
		s := NewSimulator(9, WithMetrics(reg1))
		return s, func() uint64 {
			return counterValue(t, reg1, "netsim/events/cancelled")
		}, s.Pending
	})

	reg2 := metrics.New()
	shCancelled, shPending := build(func() (Backend, func() uint64, func() int) {
		e := NewSharded(9, 4, reg2)
		return e, func() uint64 {
			return counterValue(t, reg2, "netsim/events/cancelled")
		}, e.Pending
	})

	if seqCancelled == 0 {
		t.Fatal("sequential run cancelled nothing; test is vacuous")
	}
	if shCancelled != seqCancelled {
		t.Errorf("sharded cancelled = %d, sequential = %d", shCancelled, seqCancelled)
	}
	if shPending != seqPending {
		t.Errorf("sharded Pending = %d, sequential = %d", shPending, seqPending)
	}
}

// counterValue reads one counter out of a registry snapshot by name.
func counterValue(t *testing.T, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	for _, s := range reg.Snapshot().Samples {
		if s.Name == name {
			return uint64(s.Value)
		}
	}
	t.Fatalf("counter %q not registered", name)
	return 0
}

// TestShardedDeterministicMergeAcrossShardCounts runs the same
// six-node exchange at every shard count from 1 to 6 and requires the
// exact same global execution transcript — the deterministic merge
// rule (at, schedAt, rank, seq) in isolation, without the transport
// stacks on top.
func TestShardedDeterministicMergeAcrossShardCounts(t *testing.T) {
	const nodes = 6
	run := func(shards int) []string {
		e := NewSharded(21, shards, nil)
		defer e.Close()
		views := make([]Backend, nodes)
		for i := range views {
			views[i] = e.NodeView(i * shards / nodes)
		}
		var mu sync.Mutex
		var transcript []string
		record := func(s string) {
			mu.Lock()
			transcript = append(transcript, s)
			mu.Unlock()
		}
		// Full mesh of cut links, then periodic chatter: every node
		// pings its right neighbor, replies bounce back.
		links := make([][]Port, nodes)
		for i := range links {
			links[i] = make([]Port, nodes)
			for j := range links[i] {
				if i == j {
					continue
				}
				i, j := i, j
				links[i][j] = LinkOn(views[i], LinkConfig{Delay: time.Duration(1+(i+j)%3) * time.Millisecond},
					func(p *Packet) {
						record(fmt.Sprintf("%d<-%s@%d", j, p.Data, views[j].Now()))
					}, views[j])
			}
		}
		for i := 0; i < nodes; i++ {
			i := i
			n := 0
			views[i].Every(time.Duration(500+i*137)*time.Microsecond, func() {
				n++
				target := (i + n) % nodes
				if target == i {
					target = (target + 1) % nodes
				}
				links[i][target].Send([]byte(fmt.Sprintf("m%d.%d", i, n)))
			})
		}
		e.RunFor(50 * time.Millisecond)
		// The transcript's sort key is embedded in each record; shard
		// interleaving may reorder appends of concurrent records, so
		// compare as a multiset.
		sort.Strings(transcript)
		return transcript
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("empty transcript")
	}
	for shards := 2; shards <= nodes; shards++ {
		got := run(shards)
		if len(got) != len(base) {
			t.Fatalf("shards=%d: %d records, shards=1: %d", shards, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d: transcript diverges at %d: %q vs %q", shards, i, got[i], base[i])
			}
		}
	}
}
