package netsim

import (
	"testing"
	"time"
)

// waitFor polls cond under the clock lock until it holds or the wall
// deadline passes.
func waitFor(t *testing.T, clk *RTClock, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := false
		clk.Exec(func() { ok = cond() })
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRTClockTimerFires(t *testing.T) {
	clk := NewRTClock("test", 1, nil)
	defer clk.Close()
	fired := false
	clk.Schedule(5*time.Millisecond, func() { fired = true })
	waitFor(t, clk, "timer to fire", func() bool { return fired })
	if clk.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", clk.Steps())
	}
}

func TestRTClockTimerStop(t *testing.T) {
	clk := NewRTClock("test", 1, nil)
	defer clk.Close()
	fired := false
	tm := clk.Schedule(30*time.Millisecond, func() { fired = true })
	clk.Exec(func() {
		if !tm.Active() {
			t.Error("timer should be active before firing")
		}
		tm.Stop()
		if tm.Active() {
			t.Error("timer should be inactive after Stop")
		}
	})
	time.Sleep(60 * time.Millisecond)
	clk.Exec(func() {
		if fired {
			t.Error("stopped timer fired")
		}
	})
	if clk.Steps() != 0 {
		t.Fatalf("Steps() = %d, want 0 after cancel", clk.Steps())
	}
}

func TestRTClockEveryRepeats(t *testing.T) {
	clk := NewRTClock("test", 1, nil)
	defer clk.Close()
	ticks := 0
	rep := clk.Every(2*time.Millisecond, func() { ticks++ })
	waitFor(t, clk, "three repeater ticks", func() bool { return ticks >= 3 })
	clk.Exec(func() { rep.Stop() })
	var after int
	clk.Exec(func() { after = ticks })
	time.Sleep(20 * time.Millisecond)
	clk.Exec(func() {
		if ticks > after+1 { // one in-flight firing may race the stop
			t.Errorf("repeater kept ticking after Stop: %d -> %d", after, ticks)
		}
	})
}

func TestRTClockCloseStopsCallbacks(t *testing.T) {
	clk := NewRTClock("test", 1, nil)
	fired := false
	clk.Schedule(10*time.Millisecond, func() { fired = true })
	if err := clk.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	time.Sleep(40 * time.Millisecond)
	clk.Exec(func() {
		if fired {
			t.Error("timer fired after Close")
		}
	})
}

func TestRTClockNowAdvances(t *testing.T) {
	clk := NewRTClock("test", 1, nil)
	defer clk.Close()
	t0 := clk.Now()
	time.Sleep(5 * time.Millisecond)
	if clk.Now() <= t0 {
		t.Fatalf("wall clock did not advance: %v -> %v", t0, clk.Now())
	}
}

// TestCloneBufNoAlias pins the centralized duplication contract: a
// clone never aliases the source buffer.
func TestCloneBufNoAlias(t *testing.T) {
	src := []byte("original payload")
	cp := CloneBuf(src)
	if string(cp) != string(src) {
		t.Fatalf("clone mismatch: %q != %q", cp, src)
	}
	src[0] = 'X'
	if cp[0] == 'X' {
		t.Fatal("CloneBuf aliases the source buffer")
	}
	pkt := &Packet{Data: []byte("pkt"), ECN: true}
	dup := pkt.Clone()
	pkt.Data[0] = 'Z'
	if dup.Data[0] == 'Z' {
		t.Fatal("Packet.Clone aliases the source buffer")
	}
	if !dup.ECN {
		t.Fatal("Packet.Clone dropped ECN")
	}
}
