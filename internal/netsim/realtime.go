package netsim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/metrics"
)

// RTClock is the real-time scheduling core shared by the non-simulated
// backends (channet, udpnet). It replaces the simulator's event heap
// with real time.Timers and its single-threadedness with one mutex:
// every protocol callback — timer firings, packet deliveries — runs
// with mu held, so protocol code written for the simulator runs
// unchanged. Timer creation never takes the lock (callbacks re-arm
// timers while already holding it); only the firing wrapper does.
//
// RTClock is not itself a Backend — it has no links. A backend embeds
// it and adds NewLink plus resource cleanup on Close.
type RTClock struct {
	name  string
	start time.Time

	mu     sync.Mutex
	rng    *rand.Rand
	tracer Tracer
	closed bool

	// steps counts executed callbacks/deliveries; atomic so Steps()
	// stays callable both under Exec and from the driver.
	steps atomic.Uint64

	scheduled metrics.Counter
	executed  metrics.Counter
	cancelled metrics.Counter

	msc     *metrics.Scope
	linkSeq int
}

// NewRTClock builds the real-time core for a backend named name. When
// reg is non-nil the event counters register under "netsim/events" and
// links created later register under "netsim/link<n>" — the same
// instrument shape the simulator exports, so dashboards and snapshots
// read identically across backends.
func NewRTClock(name string, seed int64, reg *metrics.Registry) *RTClock {
	c := &RTClock{name: name, start: time.Now(), rng: rand.New(rand.NewSource(seed))}
	if reg != nil {
		c.msc = reg.Scope("netsim")
		sc := c.msc.Sub("events")
		sc.Register("scheduled", &c.scheduled)
		sc.Register("executed", &c.executed)
		sc.Register("cancelled", &c.cancelled)
	}
	return c
}

// Name returns the backend name given at construction.
func (c *RTClock) Name() string { return c.name }

// Now returns wall-clock nanoseconds since the clock was built.
func (c *RTClock) Now() Time { return Time(time.Since(c.start)) }

// Rand returns the backend-owned random source. Callers must hold the
// lock (be inside a callback or Exec), as with all protocol state.
func (c *RTClock) Rand() *rand.Rand { return c.rng }

// rtTimer is the real-time arm of Timer: a time.AfterFunc whose firing
// wrapper takes the clock lock and re-checks liveness, so Stop (called
// with the lock held) and a concurrent firing can never both win.
type rtTimer struct {
	clk *RTClock
	t   *time.Timer
	// done flips when the timer fires or is stopped; guarded by clk.mu.
	done bool
}

// ScheduleTimer arms fn to run after d with the clock lock held. It is
// safe to call from protocol callbacks (the lock is not re-taken).
func (c *RTClock) ScheduleTimer(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	c.scheduled.Inc()
	rt := &rtTimer{clk: c}
	rt.t = time.AfterFunc(d, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if rt.done || c.closed {
			return
		}
		rt.done = true
		c.steps.Add(1)
		c.executed.Inc()
		fn()
	})
	return Timer{rt: rt}
}

// Schedule runs fn once after delay d (clamped to ≥ 0).
func (c *RTClock) Schedule(d time.Duration, fn func()) *Timer {
	t := c.ScheduleTimer(d, fn)
	return &t
}

// Every runs fn every interval until the Repeater is stopped.
func (c *RTClock) Every(interval time.Duration, fn func()) *Repeater {
	return newRepeater(c, interval, fn)
}

// RunFor sleeps for d of wall-clock time while timers and deliveries
// make progress on their own goroutines. Driver-side only — calling it
// from a callback would stall every other callback for d.
func (c *RTClock) RunFor(d time.Duration) { time.Sleep(d) }

// Steps counts callbacks and deliveries executed so far.
func (c *RTClock) Steps() uint64 { return c.steps.Load() }

// Exec runs fn with the clock lock held — the driver's doorway into
// protocol state. It runs even after Close (drivers harvest final
// state that way); fn must not call Exec or RunFor.
func (c *RTClock) Exec(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn()
}

// ExecStep is Exec for backend-internal delivery paths: it counts one
// step and is suppressed once the clock is closed, so late deliveries
// cannot reach torn-down protocol state.
func (c *RTClock) ExecStep(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.steps.Add(1)
	c.executed.Inc()
	fn()
}

// After arms fn to run once after d under ExecStep semantics. Backends
// use it for delayed transmissions and out-of-band deliveries.
func (c *RTClock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, func() { c.ExecStep(fn) })
}

// SetTracer attaches (nil detaches) the tracer. Call before traffic
// flows, or from inside Exec.
func (c *RTClock) SetTracer(t Tracer) { c.tracer = t }

// Tracer returns the attached tracer, or nil when tracing is off.
func (c *RTClock) Tracer() Tracer { return c.tracer }

// Close marks the clock closed: pending and future timer firings and
// deliveries become no-ops. Backends layer socket/goroutine teardown
// on top. Safe to call more than once.
func (c *RTClock) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Closed reports whether Close has run. Callers must hold the lock.
func (c *RTClock) Closed() bool { return c.closed }

// TxPlan is one packet's fate as decided by RTLinkCore.PlanSend: when
// it should arrive, whether it carries an ECN mark, whether a
// duplicate trails it, and whether it was reorder-delayed (in which
// case delivery must go out-of-band so later packets can overtake it).
type TxPlan struct {
	// ECN carries the (possibly just-set) congestion mark.
	ECN bool
	// Delay is the full send-to-arrival latency: serializer wait plus
	// propagation, jitter and any reordering extra.
	Delay time.Duration
	// Late marks a reorder-delayed packet: deliver out-of-band.
	Late bool
	// Dup, when non-nil, is a CloneBuf'd duplicate to deliver one
	// microsecond behind the original.
	Dup []byte
}

// RTLinkCore is the backend-independent half of a real-time link: the
// impairment model, serializer state, per-link metrics and trace
// identity, all in wall-clock time. It applies the exact impairment
// pipeline the simulator's Link does — same order, same counters, same
// trace events — leaving only the actual carriage (channel, socket) to
// the owning backend. All methods require the clock lock.
type RTLinkCore struct {
	clk  *RTClock
	cfg  LinkConfig
	name string
	m    LinkMetrics

	// Serializer state, in wall time.
	txFree time.Time
	queued int
	up     bool
}

// NewRTLinkCore names, registers and returns the core for the
// backend's next link.
func NewRTLinkCore(clk *RTClock, cfg LinkConfig) *RTLinkCore {
	l := &RTLinkCore{clk: clk, cfg: cfg, up: true, name: linkName(clk.linkSeq)}
	if clk.msc != nil {
		l.m.Bind(clk.msc.Sub(l.name))
	}
	clk.linkSeq++
	return l
}

// Name returns the link's creation-order identity.
func (l *RTLinkCore) Name() string { return l.name }

// SetUp raises or cuts the link.
func (l *RTLinkCore) SetUp(up bool) { l.up = up }

// Up reports whether the link is passing traffic.
func (l *RTLinkCore) Up() bool { return l.up }

// SetLossProb replaces the random-loss probability at runtime.
func (l *RTLinkCore) SetLossProb(p float64) { l.cfg.LossProb = p }

// SetReorderProb replaces the reordering probability at runtime.
func (l *RTLinkCore) SetReorderProb(p float64) { l.cfg.ReorderProb = p }

// SetDupProb replaces the duplication probability at runtime.
func (l *RTLinkCore) SetDupProb(p float64) { l.cfg.DupProb = p }

// Stats returns a view of the link counters.
func (l *RTLinkCore) Stats() metrics.View { return l.m.View() }

// Config returns the link's configuration.
func (l *RTLinkCore) Config() LinkConfig { return l.cfg }

// Trace emits one link-layer span event when tracing is on.
func (l *RTLinkCore) Trace(kind, verdict string, data []byte, end bool, frame []byte) {
	t := l.clk.tracer
	if t == nil {
		return
	}
	t.Emit(TraceEvent{
		At: l.clk.Now(), ID: t.ID(data), Len: len(data),
		Node: l.name, Layer: LayerLink, Kind: kind, Verdict: verdict, End: end,
	}, frame)
}

// Ingest copies data into a pooled buffer and stamps it as a fresh
// trace incarnation — the Port.Send front half, shared by backends.
func (l *RTLinkCore) Ingest(data []byte) []byte {
	buf := bufpool.Get(len(data))
	copy(buf, data)
	if t := l.clk.tracer; t != nil {
		t.Stamp(buf)
	}
	return buf
}

// PlanSend runs the impairment pipeline for one owned buffer: up
// check, random loss, serialization/queueing/ECN, jitter, reordering,
// in-place corruption, duplication, and the transmit trace event. On
// ok it returns the delivery plan and the (possibly corrupted) buffer
// remains the caller's to carry; on !ok the packet was dropped, the
// counters and trace already say why, and the buffer went back to the
// pool.
func (l *RTLinkCore) PlanSend(data []byte) (plan TxPlan, ok bool) {
	l.m.Sent.Inc()
	if !l.up {
		l.m.DownDrop.Inc()
		l.Trace("drop", VerdictDownDrop, data, true, nil)
		bufpool.Put(data)
		return plan, false
	}
	rng := l.clk.rng
	if chance(rng, l.cfg.LossProb) {
		l.m.Lost.Inc()
		l.Trace("drop", VerdictLost, data, true, nil)
		bufpool.Put(data)
		return plan, false
	}

	// Serialization and queueing, in wall time.
	now := time.Now()
	depart := now
	if l.cfg.RateBps > 0 {
		if l.cfg.QueueLimit > 0 && l.queued >= l.cfg.QueueLimit {
			l.m.QueueDrop.Inc()
			l.Trace("drop", VerdictQueueDrop, data, true, nil)
			bufpool.Put(data)
			return plan, false
		}
		if l.cfg.ECNThreshold > 0 && l.queued >= l.cfg.ECNThreshold {
			plan.ECN = true
			l.m.ECNMarked.Inc()
		}
		txTime := time.Duration(int64(len(data)) * 8 * int64(time.Second) / l.cfg.RateBps)
		start := l.txFree
		if start.Before(now) {
			start = now
		}
		l.txFree = start.Add(txTime)
		depart = l.txFree
		l.setQueued(l.queued + 1)
		l.clk.After(depart.Sub(now), func() { l.setQueued(l.queued - 1) })
	}

	extra := time.Duration(0)
	if l.cfg.Jitter > 0 {
		extra += time.Duration(rng.Int63n(l.cfg.Jitter.Nanoseconds()))
	}
	if chance(rng, l.cfg.ReorderProb) {
		l.m.Reordered.Inc()
		span := 4 * l.cfg.Delay.Nanoseconds()
		if span <= 0 {
			span = int64(400 * time.Microsecond)
		}
		extra += time.Duration(1 + rng.Int63n(span))
		plan.Late = true
	}
	if chance(rng, l.cfg.CorruptProb) && len(data) > 0 {
		l.m.Corrupted.Inc()
		bit := rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << uint(7-bit%8)
		l.Trace("corrupt", "", data, false, nil)
	}

	plan.Delay = depart.Sub(now) + l.cfg.Delay + extra
	// The capture point: these exact bytes (after any in-place
	// corruption) are what travels the wire.
	l.Trace("transmit", "", data, false, data)
	if chance(rng, l.cfg.DupProb) {
		l.m.Duplicate.Inc()
		plan.Dup = CloneBuf(data)
		if t := l.clk.tracer; t != nil {
			t.Stamp(plan.Dup)
			l.Trace("dup", "", plan.Dup, false, plan.Dup)
		}
	}
	return plan, true
}

func (l *RTLinkCore) setQueued(n int) {
	l.queued = n
	l.m.QueueDepth.Set(int64(n))
}

// Delivered runs the arrival half: the down check, the delivered
// counters and the deliver trace event. It reports whether the buffer
// should reach the destination handler; on false the packet was
// dropped and the buffer returned to the pool.
func (l *RTLinkCore) Delivered(data []byte) bool {
	if !l.up {
		l.m.DownDrop.Inc()
		l.Trace("drop", VerdictDownDrop, data, true, nil)
		bufpool.Put(data)
		return false
	}
	l.m.Delivered.Inc()
	l.m.DeliveredBytes.Add(uint64(len(data)))
	l.Trace("deliver", "", data, false, nil)
	return true
}
