package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bufpool"
	"repro/internal/metrics"
)

// Packet is the unit carried by links: opaque bytes plus the ECN
// congestion-experienced mark (the simulator's stand-in for the IP ECN
// codepoint, which the OSR sublayer's congestion control reads).
type Packet struct {
	Data []byte
	ECN  bool
}

// Clone deep-copies a packet so impairments (corruption, duplication)
// never alias caller memory. The copy goes through CloneBuf — the
// Backend contract's single duplication path — so the clone's Data is
// a pooled buffer the caller owns.
func (p *Packet) Clone() *Packet {
	return &Packet{Data: CloneBuf(p.Data), ECN: p.ECN}
}

// Handler consumes delivered packets.
type Handler func(pkt *Packet)

// LinkConfig describes one direction of a point-to-point link.
type LinkConfig struct {
	// Delay is the propagation delay; Jitter adds a uniform random
	// extra delay in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// RateBps is the serialization rate in bits per second; zero means
	// infinitely fast (no serialization delay, no queue).
	RateBps int64
	// QueueLimit bounds the number of packets waiting for the
	// serializer (drop-tail). Zero means unbounded.
	QueueLimit int
	// ECNThreshold marks packets with congestion-experienced when the
	// queue occupancy at enqueue time is at least this many packets.
	// Zero disables marking.
	ECNThreshold int
	// LossProb drops a packet entirely.
	LossProb float64
	// DupProb delivers a packet twice (the copy trails by 1µs).
	DupProb float64
	// ReorderProb delays a packet by an extra uniform amount in
	// (0, 4×Delay] so later packets can overtake it.
	ReorderProb float64
	// CorruptProb flips one random bit of the payload. Error-detection
	// sublayers are expected to catch these.
	CorruptProb float64
}

// LinkMetrics counts what happened to traffic on a link. The fields
// are the single source of truth on every backend; Stats() projects
// them as a View and an attached registry adopts them under
// "netsim/link<n>". Exported so the real-time backends (channet,
// udpnet) count into the identical instrument shape.
//
// Down drops are split into a send-side and a receive-side counter
// because on the sharded engine the two ends of a link can execute on
// different shards; each side increments only its own counter (the
// single-writer rule) and the registry exports their sum under the
// historical "down_drop" name.
type LinkMetrics struct {
	Sent           metrics.Counter
	Delivered      metrics.Counter
	DeliveredBytes metrics.Counter
	Lost           metrics.Counter
	Duplicate      metrics.Counter
	Reordered      metrics.Counter
	Corrupted      metrics.Counter
	QueueDrop      metrics.Counter
	DownDrop       metrics.Counter // send side went down
	DownDropRecv   metrics.Counter // down detected at delivery time
	ECNMarked      metrics.Counter
	QueueDepth     metrics.Gauge
}

// Bind registers every counter into sc (typically "netsim/link<n>").
func (m *LinkMetrics) Bind(sc *metrics.Scope) {
	sc.Register("sent", &m.Sent)
	sc.Register("delivered", &m.Delivered)
	sc.Register("delivered_bytes", &m.DeliveredBytes)
	sc.Register("lost", &m.Lost)
	sc.Register("duplicate", &m.Duplicate)
	sc.Register("reordered", &m.Reordered)
	sc.Register("corrupted", &m.Corrupted)
	sc.Register("queue_drop", &m.QueueDrop)
	sc.Register("down_drop", metrics.CounterSum{&m.DownDrop, &m.DownDropRecv})
	sc.Register("ecn_marked", &m.ECNMarked)
	sc.Register("queue_depth", &m.QueueDepth)
}

// View snapshots the counters under their registry names.
func (m *LinkMetrics) View() metrics.View {
	return metrics.View{
		"sent":            m.Sent.Value(),
		"delivered":       m.Delivered.Value(),
		"delivered_bytes": m.DeliveredBytes.Value(),
		"lost":            m.Lost.Value(),
		"duplicate":       m.Duplicate.Value(),
		"reordered":       m.Reordered.Value(),
		"corrupted":       m.Corrupted.Value(),
		"queue_drop":      m.QueueDrop.Value(),
		"down_drop":       m.DownDrop.Value() + m.DownDropRecv.Value(),
		"ecn_marked":      m.ECNMarked.Value(),
	}
}

// linkName renders the creation-order link identity every backend
// shares: "link0", "link1", ...
func linkName(n int) string { return fmt.Sprintf("link%d", n) }

// linkEnv is what a Link needs from its substrate: the send-side
// clock, the tracer, and the two event sinks. On the sequential
// Simulator all of it is the one event heap; on the sharded engine the
// env is the sending node's view, and postDeliver may cross into
// another shard's mailbox while postQueueFree always stays local (the
// serializer is send-side state).
type linkEnv interface {
	envNow() Time
	envTracer() Tracer
	postDeliver(l *Link, at Time, data []byte, ecn bool)
	postQueueFree(l *Link, at Time)
}

func (s *Simulator) envNow() Time     { return s.now }
func (s *Simulator) envTracer() Tracer { return s.tracer }

func (s *Simulator) postDeliver(l *Link, at Time, data []byte, ecn bool) {
	e := s.post(at)
	e.kind = evDeliver
	e.lnk = l
	e.pkt = Packet{Data: data, ECN: ecn}
}

func (s *Simulator) postQueueFree(l *Link, at Time) {
	e := s.post(at)
	e.kind = evQueueFree
	e.lnk = l
}

// Link is a unidirectional impaired channel on the simulator. Create
// with Simulator.NewLink; send with Send. Delivery invokes the
// destination handler inside the event loop. Link is the simulator's
// Port implementation.
type Link struct {
	env  linkEnv
	cfg  LinkConfig
	dst  Handler
	name string // "link<n>" in creation order; trace/metrics identity
	m    LinkMetrics
	// rng is the link's own impairment stream, seeded from the world
	// seed and the link index, so draws depend only on this link's send
	// sequence — never on how events from other links interleave. That
	// independence is what keeps sequential and sharded runs
	// byte-identical.
	rng *rand.Rand
	// serializer state: the time at which the transmitter frees up.
	txFree Time
	queued int
	// Up gates delivery: a downed link drops traffic, counting it as
	// down_drop (used by routing failure experiments and fault
	// injection).
	up bool
}

// NewLink creates a unidirectional link delivering to dst. When the
// simulator carries a registry, the link's counters register under
// "netsim/link<n>/..." in creation order.
func (s *Simulator) NewLink(cfg LinkConfig, dst Handler) Port {
	if dst == nil {
		panic("netsim: NewLink with nil destination")
	}
	l := &Link{env: s, cfg: cfg, dst: dst, up: true,
		name: linkName(s.linkSeq),
		rng:  rand.New(rand.NewSource(linkSeed(s.seed, s.linkSeq)))}
	if s.msc != nil {
		l.m.Bind(s.msc.Sub(l.name))
	}
	s.linkSeq++
	return l
}

// Name returns the link's creation-order identity ("link0", "link1",
// ...), matching its metrics scope and its trace/pcap interface name.
func (l *Link) Name() string { return l.name }

// trace emits one link-layer span event when tracing is on. frame
// carries the wire bytes for packet capture (transmit events only).
func (l *Link) trace(t Tracer, at Time, kind, verdict string, data []byte, end bool, frame []byte) {
	t.Emit(TraceEvent{
		At: at, ID: t.ID(data), Len: len(data),
		Node: l.name, Layer: LayerLink, Kind: kind, Verdict: verdict, End: end,
	}, frame)
}

// SetUp raises or cuts the link. Packets sent (or already in flight)
// while down are counted as down_drop, distinct from random loss.
func (l *Link) SetUp(up bool) { l.up = up }

// Up reports whether the link is passing traffic.
func (l *Link) Up() bool { return l.up }

// SetLossProb replaces the link's random-loss probability at runtime.
// Fault injectors use this to overlay time-varying loss models (e.g.
// Gilbert–Elliott bursty loss) on top of a static configuration.
func (l *Link) SetLossProb(p float64) { l.cfg.LossProb = p }

// SetReorderProb replaces the link's reordering probability at
// runtime. Fault injectors use this to open bounded reordering windows
// (faults.Reorder) and restore the configured value afterwards.
func (l *Link) SetReorderProb(p float64) { l.cfg.ReorderProb = p }

// SetDupProb replaces the link's duplication probability at runtime.
func (l *Link) SetDupProb(p float64) { l.cfg.DupProb = p }

// Stats returns a view of the link counters (keys: sent, delivered,
// delivered_bytes, lost, duplicate, reordered, corrupted, queue_drop,
// down_drop, ecn_marked).
func (l *Link) Stats() metrics.View { return l.m.View() }

// Config returns the link's configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Send transmits data over the link, applying serialization, queueing,
// ECN marking and the configured impairments. The data is copied (into
// a pooled buffer that the receiving end owns).
func (l *Link) Send(data []byte) {
	buf := bufpool.Get(len(data))
	copy(buf, data)
	if t := l.env.envTracer(); t != nil {
		t.Stamp(buf) // fresh incarnation: the copy starts its own chain
	}
	l.SendOwned(buf, false)
}

// SendPacket is Send for a packet that may already carry an ECN mark.
// It takes ownership of pkt.Data (see SendOwned); the Packet struct
// itself is not retained.
func (l *Link) SendPacket(pkt *Packet) {
	l.SendOwned(pkt.Data, pkt.ECN)
}

// SendOwned transmits data, transferring ownership of the buffer to
// the link: the caller must not touch data afterwards. The link either
// carries the buffer through to the destination handler (which then
// owns it) or returns it to the bufpool on a drop. Impairments mutate
// the buffer in place — there is no per-hop copy. On the sharded
// engine a cross-shard delivery hands the buffer off through the
// window mailbox; the receiving shard is the next owner and the sender
// never touches it again.
func (l *Link) SendOwned(data []byte, ecn bool) {
	tr := l.env.envTracer()
	now := l.env.envNow()
	l.m.Sent.Inc()
	if !l.up {
		l.m.DownDrop.Inc()
		if tr != nil {
			l.trace(tr, now, "drop", VerdictDownDrop, data, true, nil)
		}
		bufpool.Put(data)
		return
	}
	rng := l.rng
	if chance(rng, l.cfg.LossProb) {
		l.m.Lost.Inc()
		if tr != nil {
			l.trace(tr, now, "drop", VerdictLost, data, true, nil)
		}
		bufpool.Put(data)
		return
	}

	// Serialization and queueing.
	depart := now
	if l.cfg.RateBps > 0 {
		if l.cfg.QueueLimit > 0 && l.queued >= l.cfg.QueueLimit {
			l.m.QueueDrop.Inc()
			if tr != nil {
				l.trace(tr, now, "drop", VerdictQueueDrop, data, true, nil)
			}
			bufpool.Put(data)
			return
		}
		if l.cfg.ECNThreshold > 0 && l.queued >= l.cfg.ECNThreshold {
			ecn = true
			l.m.ECNMarked.Inc()
		}
		txTime := Time(int64(len(data)) * 8 * int64(time.Second) / l.cfg.RateBps)
		start := l.txFree
		if start < now {
			start = now
		}
		l.txFree = start + txTime
		depart = l.txFree
		l.setQueued(l.queued + 1)
		l.env.postQueueFree(l, depart)
	}

	extra := Time(0)
	if l.cfg.Jitter > 0 {
		extra += Time(rng.Int63n(l.cfg.Jitter.Nanoseconds()))
	}
	if chance(rng, l.cfg.ReorderProb) {
		l.m.Reordered.Inc()
		span := 4 * l.cfg.Delay.Nanoseconds()
		if span <= 0 {
			span = int64(400 * time.Microsecond)
		}
		extra += Time(1 + rng.Int63n(span))
	}
	if chance(rng, l.cfg.CorruptProb) && len(data) > 0 {
		l.m.Corrupted.Inc()
		bit := rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << uint(7-bit%8)
		if tr != nil {
			l.trace(tr, now, "corrupt", "", data, false, nil)
		}
	}

	arrive := depart + durTicks(l.cfg.Delay) + extra
	if tr != nil {
		// The capture point: these exact bytes (after any in-place
		// corruption) are what travels the wire.
		l.trace(tr, now, "transmit", "", data, false, data)
	}
	l.env.postDeliver(l, arrive, data, ecn)
	if chance(rng, l.cfg.DupProb) {
		l.m.Duplicate.Inc()
		dup := CloneBuf(data)
		if tr != nil {
			t := tr
			t.Stamp(dup)
			l.trace(t, now, "dup", "", dup, false, dup)
		}
		l.env.postDeliver(l, arrive+durTicks(time.Microsecond), dup, ecn)
	}
}

func (l *Link) setQueued(n int) {
	l.queued = n
	l.m.QueueDepth.Set(int64(n))
}

// deliver runs at arrival time on the destination's shard. The *Packet
// points into the event and is only valid for the duration of the
// handler call; the Data buffer, however, is the handler's to keep (or
// Put back to the bufpool). Only receive-side state (Delivered,
// DownDropRecv, the destination handler) is touched here — never the
// serializer or the impairment stream, which belong to the sender.
func (l *Link) deliver(p *Packet, at Time, tr Tracer) {
	if !l.up {
		l.m.DownDropRecv.Inc()
		if tr != nil {
			l.trace(tr, at, "drop", VerdictDownDrop, p.Data, true, nil)
		}
		bufpool.Put(p.Data)
		return
	}
	l.m.Delivered.Inc()
	l.m.DeliveredBytes.Add(uint64(len(p.Data)))
	if tr != nil {
		l.trace(tr, at, "deliver", "", p.Data, false, nil)
	}
	l.dst(p)
}

func chance(rng *rand.Rand, p float64) bool {
	return p > 0 && rng.Float64() < p
}

// Duplex bundles the two directions of a point-to-point link on any
// backend.
type Duplex struct {
	AB Port // a → b
	BA Port // b → a
}

// NewDuplex builds a symmetric bidirectional link with the same config
// in each direction, delivering to the two handlers.
//
// Prefer the backend-agnostic NewDuplexOn, which works on every
// Backend; this method remains for direct simulator wiring.
func (s *Simulator) NewDuplex(cfg LinkConfig, toA, toB Handler) *Duplex {
	return NewDuplexOn(s, cfg, toA, toB)
}

// SetUp raises or cuts both directions.
func (d *Duplex) SetUp(up bool) {
	d.AB.SetUp(up)
	d.BA.SetUp(up)
}
