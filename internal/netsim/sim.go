// Package netsim is a deterministic discrete-event network simulator.
//
// Every protocol in this repository — data link, routing, transport —
// runs over netsim rather than a real network. All time is virtual and
// all randomness flows from seeded sources, so every experiment in
// EXPERIMENTS.md is an exact function of its seed: loss patterns,
// reordering, corruption and timer interleavings replay identically.
//
// The model is intentionally small: a Simulator owns a virtual clock
// and an event heap; a Link is a unidirectional channel with
// configurable propagation delay, jitter, serialization rate, queue
// limit, loss, duplication, reordering, bit corruption and ECN marking;
// a Bus is a shared broadcast medium with collisions for the MAC
// sublayer experiments. The Sharded engine (sharded.go) runs several
// event heaps in parallel under conservative lookahead windows while
// producing byte-identical results.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time int64

// Duration converts a standard library duration to simulator ticks.
func durTicks(d time.Duration) Time { return Time(d.Nanoseconds()) }

// String formats the time as a duration for traces.
func (t Time) String() string { return time.Duration(t).String() }

// Event kinds. The hot link paths (packet delivery, serializer queue
// release) are tagged events carrying their operands in the event
// itself instead of a fresh closure per packet, so a recycled event is
// the only per-hop scheduling cost.
const (
	evFunc      uint8 = iota // run fn
	evDeliver                // deliver pkt on lnk
	evQueueFree              // release one serializer queue slot on lnk
)

// event carries the canonical ordering key (at, schedAt, rank, seq):
// execution time, then scheduling time, then the scheduler's identity
// rank, then the scheduler's local sequence number. On the sequential
// simulator every event has rank 0 and a global seq, which makes the
// key order-equivalent to the historical (at, seq) FIFO tiebreak —
// schedAt is nondecreasing in seq because schedules happen in
// time-ordered execution. The sharded engine assigns each node view a
// stable rank, so the same key decides the same order regardless of
// how shards interleave; this is the deterministic merge rule.
type event struct {
	at      Time
	schedAt Time   // virtual time the schedule call was made
	seq     uint64 // scheduler-local FIFO tiebreak for simultaneous events
	rank    int32  // scheduler identity (0 sequential, node rank sharded)
	gen     uint32 // bumped on recycle; detached Timers compare it
	kind    uint8
	fn      func()
	lnk     *Link
	pkt     Packet
	dead    bool
	idx     int
	core    *evCore // owner, so Timer.Stop can account the cancellation
}

// before reports whether e orders before the (at, schedAt, rank, seq)
// key — the single comparison the heap and the sharded window bounds
// share.
func (e *event) before(at, schedAt Time, rank int32, seq uint64) bool {
	if e.at != at {
		return e.at < at
	}
	if e.schedAt != schedAt {
		return e.schedAt < schedAt
	}
	if e.rank != rank {
		return e.rank < rank
	}
	return e.seq < seq
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	return h[i].before(h[j].at, h[j].schedAt, h[j].rank, h[j].seq)
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// evCore is one event heap plus its clock, freelist and counters: the
// whole engine of the sequential Simulator, and one shard of the
// Sharded engine. Every instrument has a single writer (the goroutine
// running the core), which is the discipline that lets the sharded
// engine avoid atomics: cross-core reads only happen at barriers.
type evCore struct {
	now    Time
	events eventHeap
	seq    uint64

	// free recycles executed and compacted-away events. An event is
	// only recycled once it is out of the heap, and its gen counter is
	// bumped so a stale Timer can never cancel the reincarnation. The
	// freelist is per-core: a recycled event (and the generation-tagged
	// Timer protocol built on it) never crosses shards.
	free []*event

	scheduled metrics.Counter
	executed  metrics.Counter
	cancelled metrics.Counter
	// deadPending counts cancelled events still sitting in this core's
	// heap. When they outnumber the live ones the heap is compacted, so
	// a workload that arms and cancels many timers (retransmission
	// timers across thousands of flows) cannot grow the heap without
	// bound. Both the count and the compaction are shard-local.
	deadPending int
}

// post pushes a recycled (or fresh) event carrying the full ordering
// key. The caller has already clamped at and computed schedAt/rank/seq;
// kind-specific fields are filled in afterwards.
func (c *evCore) post(at, schedAt Time, rank int32, seq uint64) *event {
	c.scheduled.Inc()
	var e *event
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		e.at, e.schedAt, e.rank, e.seq = at, schedAt, rank, seq
		e.dead = false
	} else {
		e = &event{at: at, schedAt: schedAt, rank: rank, seq: seq, core: c}
	}
	heap.Push(&c.events, e)
	return e
}

// postForeign ingests a cross-shard mailbox delivery: the event keeps
// the sender's key (already counted as scheduled on the sender's core)
// so the comparator alone decides its order among local events.
func (c *evCore) postForeign(at, schedAt Time, rank int32, seq uint64, lnk *Link, pkt Packet) {
	var e *event
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		e.at, e.schedAt, e.rank, e.seq = at, schedAt, rank, seq
		e.dead = false
	} else {
		e = &event{at: at, schedAt: schedAt, rank: rank, seq: seq, core: c}
	}
	e.kind = evDeliver
	e.lnk = lnk
	e.pkt = pkt
	heap.Push(&c.events, e)
}

// recycle returns an event that left the heap to the core's freelist.
func (c *evCore) recycle(e *event) {
	e.gen++
	e.kind = evFunc
	e.fn = nil
	e.lnk = nil
	e.pkt = Packet{}
	c.free = append(c.free, e)
}

// maybeCompact rebuilds the heap without tombstones once cancelled
// events outnumber live ones. Rebuilding is O(n), amortized O(1) per
// cancellation since at least half the heap is discarded each time.
func (c *evCore) maybeCompact() {
	if c.deadPending*2 <= len(c.events) {
		return
	}
	live := make(eventHeap, 0, len(c.events)-c.deadPending)
	for _, e := range c.events {
		if !e.dead {
			live = append(live, e)
		} else {
			c.recycle(e)
		}
	}
	for i, e := range live {
		e.idx = i
	}
	c.events = live
	heap.Init(&c.events)
	c.deadPending = 0
}

// step executes the next pending event, reporting false on an empty
// heap.
func (c *evCore) step(tr Tracer) bool {
	for len(c.events) > 0 {
		e := heap.Pop(&c.events).(*event)
		if e.dead {
			c.deadPending--
			c.recycle(e)
			continue
		}
		e.dead = true // a fired timer is no longer Active
		c.now = e.at
		c.executed.Inc()
		dispatch(e, tr)
		c.recycle(e)
		return true
	}
	return false
}

// runBefore executes every event strictly before the (at, schedAt,
// rank, seq) bound — the sharded engine's window body. Events a
// callback schedules inside the bound run in the same pass.
func (c *evCore) runBefore(at, schedAt Time, rank int32, seq uint64, tr Tracer) {
	for len(c.events) > 0 {
		e := c.events[0]
		if e.dead {
			heap.Pop(&c.events)
			c.deadPending--
			c.recycle(e)
			continue
		}
		if !e.before(at, schedAt, rank, seq) {
			return
		}
		c.step(tr)
	}
}

// nextAt returns the execution time of the earliest live event, popping
// tombstones off the top, or ok=false on an empty heap. Only safe to
// call when the core is not running (at a barrier).
func (c *evCore) nextAt() (Time, bool) {
	for len(c.events) > 0 {
		e := c.events[0]
		if e.dead {
			heap.Pop(&c.events)
			c.deadPending--
			c.recycle(e)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// dispatch runs one live event. Tagged kinds keep the per-packet link
// events closure-free; everything else goes through fn.
func dispatch(e *event, tr Tracer) {
	switch e.kind {
	case evDeliver:
		e.lnk.deliver(&e.pkt, e.at, tr)
	case evQueueFree:
		e.lnk.setQueued(e.lnk.queued - 1)
	default:
		e.fn()
	}
}

// Simulator owns the virtual clock, the event queue and the random
// source. It is not safe for concurrent use; all protocol code runs
// single-threaded inside event callbacks, which is what makes runs
// reproducible.
type Simulator struct {
	evCore
	seed int64
	rng  *rand.Rand

	// msc is the simulator's metrics scope ("netsim/..."); nil when no
	// registry is attached (all instruments then run detached).
	msc     *metrics.Scope
	linkSeq int
	busSeq  int
	// tracer, when non-nil, receives causal trace events (see trace.go).
	// Nil by default; every emission site is a single nil check.
	tracer Tracer
}

// Option configures a Simulator at construction.
type Option func(*Simulator)

// WithMetrics registers the simulator's event counters and every
// subsequently created Link and Bus into reg under "netsim/...".
//
// Deprecation note: world-building callers should not use this
// directly anymore — construct through harness.New with
// transport.WithRegistry, which plumbs the registry to whichever
// backend is selected. This option remains for code driving a bare
// Simulator.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Simulator) { s.msc = reg.Scope("netsim") }
}

// NewSimulator returns a simulator whose randomness derives from seed.
func NewSimulator(seed int64, opts ...Option) *Simulator {
	s := &Simulator{seed: seed, rng: rand.New(rand.NewSource(seed))}
	for _, o := range opts {
		o(s)
	}
	if s.msc != nil {
		sc := s.msc.Sub("events")
		sc.Register("scheduled", &s.scheduled)
		sc.Register("executed", &s.executed)
		sc.Register("cancelled", &s.cancelled)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation-owned random source. Protocol code must
// use this (never the global source) to stay deterministic.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// linkSeed derives the impairment stream of link index idx from the
// world seed. Links draw loss/jitter/reorder/corrupt/dup from their own
// stream — a pure function of (seed, index, send count) — so the draws
// are identical whether the links execute sequentially or sharded.
func linkSeed(seed int64, idx int) int64 {
	return seed ^ (int64(idx)+1)*0x1E3779B97F4A7C15
}

// Timer is a handle to a scheduled callback, on any backend. On the
// simulator it remembers the event's generation at scheduling time:
// once the event fires (or is stopped) and gets recycled for an
// unrelated callback, the stale handle goes inert instead of
// cancelling the new occupant. On real-time backends it wraps a
// time.Timer (the rt arm). A zero Timer is inert either way, so
// protocol structs can hold one by value before ever arming it.
type Timer struct {
	ev  *event
	gen uint32
	rt  *rtTimer
}

// Stop cancels the timer if it has not fired. It reports whether the
// cancellation prevented a pending firing. On the simulator the event
// stays in the heap as a tombstone; once tombstones exceed half the
// heap the owning core compacts it, so cancelled timers cannot leak —
// the bookkeeping (cancelled counter, deadPending) lives on the shard
// that owns the event, never globally. On real-time backends the
// caller must hold the backend lock (be inside a callback or Exec),
// which is already true of all protocol code.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.rt != nil {
		if t.rt.done {
			return false
		}
		t.rt.done = true
		t.rt.t.Stop()
		t.rt.clk.cancelled.Inc()
		return true
	}
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	if c := t.ev.core; c != nil {
		c.cancelled.Inc()
		c.deadPending++
		c.maybeCompact()
	}
	return true
}

// Active reports whether the timer is still pending. The locking rule
// matches Stop's.
func (t *Timer) Active() bool {
	if t == nil {
		return false
	}
	if t.rt != nil {
		return !t.rt.done
	}
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

// Schedule runs fn after virtual delay d (clamped to ≥ 0).
func (s *Simulator) Schedule(d time.Duration, fn func()) *Timer {
	t := s.now + durTicks(d)
	if t < s.now {
		t = s.now
	}
	return s.ScheduleAt(t, fn)
}

// ScheduleAt runs fn at absolute virtual time at (clamped to ≥ now).
func (s *Simulator) ScheduleAt(at Time, fn func()) *Timer {
	e := s.post(at)
	e.fn = fn
	return &Timer{ev: e, gen: e.gen}
}

// ScheduleTimer is Schedule returning the Timer by value, for callers
// that hold the handle in a long-lived struct (Repeater, the
// transports' retransmission state) and should not allocate one per
// re-arm. A zero Timer is inert: Stop and Active are safe on it.
func (s *Simulator) ScheduleTimer(d time.Duration, fn func()) Timer {
	t := s.now + durTicks(d)
	if t < s.now {
		t = s.now
	}
	e := s.post(t)
	e.fn = fn
	return Timer{ev: e, gen: e.gen}
}

// post pushes an event at time at (clamped to ≥ now) with the
// sequential key: rank 0, global sequence, schedAt = now.
func (s *Simulator) post(at Time) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	return s.evCore.post(at, s.now, 0, s.seq)
}

// Pending returns the number of events in the heap, tombstones
// included (tests and capacity planning).
func (s *Simulator) Pending() int { return len(s.events) }

// Step executes the next pending event. It reports false when the queue
// is empty.
func (s *Simulator) Step() bool { return s.step(s.tracer) }

// Run executes events until the queue drains or the step limit is hit;
// it returns the number of events executed. A zero limit means no
// limit. Protocols with periodic timers never drain the queue, so most
// callers use RunFor or RunUntilIdle instead.
func (s *Simulator) Run(limit int) int {
	n := 0
	for (limit == 0 || n < limit) && s.Step() {
		n++
	}
	return n
}

// RunFor executes events for a span of virtual time, then stops with
// the clock advanced to exactly start+d.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now + durTicks(d))
}

// RunUntil executes all events scheduled strictly up to and including
// time t, then sets the clock to t.
func (s *Simulator) RunUntil(t Time) {
	for {
		at, ok := s.nextAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Steps returns the total number of events executed, a cheap progress
// metric for benchmarks. It reads the same counter the metrics
// registry exports as "netsim/events/executed".
func (s *Simulator) Steps() uint64 { return s.executed.Value() }

// Every schedules fn to run every interval until the returned Repeater
// is stopped. The first firing is after one interval.
func (s *Simulator) Every(interval time.Duration, fn func()) *Repeater {
	return newRepeater(s, interval, fn)
}

// timerScheduler is the sliver of Backend a Repeater needs to re-arm;
// the Simulator, the RTClock and the sharded engine's views satisfy it.
type timerScheduler interface {
	ScheduleTimer(d time.Duration, fn func()) Timer
}

// Repeater is a periodic timer, usable on any backend.
type Repeater struct {
	sched    timerScheduler
	interval time.Duration
	fn       func()
	tick     func() // built once; re-arming allocates nothing
	t        Timer
	stopped  bool
}

func newRepeater(s timerScheduler, interval time.Duration, fn func()) *Repeater {
	r := &Repeater{sched: s, interval: interval, fn: fn}
	r.tick = func() {
		if r.stopped {
			return
		}
		r.fn()
		if !r.stopped {
			r.arm()
		}
	}
	r.arm()
	return r
}

func (r *Repeater) arm() {
	r.t = r.sched.ScheduleTimer(r.interval, r.tick)
}

// Stop cancels future firings.
func (r *Repeater) Stop() {
	r.stopped = true
	r.t.Stop()
}

func (s *Simulator) String() string {
	return fmt.Sprintf("sim(t=%v, pending=%d, steps=%d)", s.now, len(s.events), s.executed.Value())
}
