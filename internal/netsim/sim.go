// Package netsim is a deterministic discrete-event network simulator.
//
// Every protocol in this repository — data link, routing, transport —
// runs over netsim rather than a real network. All time is virtual and
// all randomness flows from a single seeded source, so every experiment
// in EXPERIMENTS.md is an exact function of its seed: loss patterns,
// reordering, corruption and timer interleavings replay identically.
//
// The model is intentionally small: a Simulator owns a virtual clock
// and an event heap; a Link is a unidirectional channel with
// configurable propagation delay, jitter, serialization rate, queue
// limit, loss, duplication, reordering, bit corruption and ECN marking;
// a Bus is a shared broadcast medium with collisions for the MAC
// sublayer experiments.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time int64

// Duration converts a standard library duration to simulator ticks.
func durTicks(d time.Duration) Time { return Time(d.Nanoseconds()) }

// String formats the time as a duration for traces.
func (t Time) String() string { return time.Duration(t).String() }

// Event kinds. The hot link paths (packet delivery, serializer queue
// release) are tagged events carrying their operands in the event
// itself instead of a fresh closure per packet, so a recycled event is
// the only per-hop scheduling cost.
const (
	evFunc      uint8 = iota // run fn
	evDeliver                // deliver pkt on lnk
	evQueueFree              // release one serializer queue slot on lnk
)

type event struct {
	at   Time
	seq  uint64 // FIFO tiebreak for simultaneous events: determinism
	gen  uint32 // bumped on recycle; detached Timers compare it
	kind uint8
	fn   func()
	lnk  *Link
	pkt  Packet
	dead bool
	idx  int
	sim  *Simulator // owner, so Timer.Stop can account the cancellation
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock, the event queue and the random
// source. It is not safe for concurrent use; all protocol code runs
// single-threaded inside event callbacks, which is what makes runs
// reproducible.
type Simulator struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// free recycles executed and compacted-away events. An event is
	// only recycled once it is out of the heap, and its gen counter is
	// bumped so a stale Timer can never cancel the reincarnation.
	free []*event

	scheduled metrics.Counter
	executed  metrics.Counter
	cancelled metrics.Counter
	// deadPending counts cancelled events still sitting in the heap.
	// When they outnumber the live ones the heap is compacted, so a
	// workload that arms and cancels many timers (retransmission timers
	// across thousands of flows) cannot grow the heap without bound.
	deadPending int
	// msc is the simulator's metrics scope ("netsim/..."); nil when no
	// registry is attached (all instruments then run detached).
	msc     *metrics.Scope
	linkSeq int
	busSeq  int
	// tracer, when non-nil, receives causal trace events (see trace.go).
	// Nil by default; every emission site is a single nil check.
	tracer Tracer
}

// Option configures a Simulator at construction.
type Option func(*Simulator)

// WithMetrics registers the simulator's event counters and every
// subsequently created Link and Bus into reg under "netsim/...".
//
// Deprecation note: world-building callers should not use this
// directly anymore — construct through harness.New with
// transport.WithRegistry, which plumbs the registry to whichever
// backend is selected. This option remains for code driving a bare
// Simulator.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Simulator) { s.msc = reg.Scope("netsim") }
}

// NewSimulator returns a simulator whose randomness derives from seed.
func NewSimulator(seed int64, opts ...Option) *Simulator {
	s := &Simulator{rng: rand.New(rand.NewSource(seed))}
	for _, o := range opts {
		o(s)
	}
	if s.msc != nil {
		sc := s.msc.Sub("events")
		sc.Register("scheduled", &s.scheduled)
		sc.Register("executed", &s.executed)
		sc.Register("cancelled", &s.cancelled)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation-owned random source. Protocol code must
// use this (never the global source) to stay deterministic.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Timer is a handle to a scheduled callback, on any backend. On the
// simulator it remembers the event's generation at scheduling time:
// once the event fires (or is stopped) and gets recycled for an
// unrelated callback, the stale handle goes inert instead of
// cancelling the new occupant. On real-time backends it wraps a
// time.Timer (the rt arm). A zero Timer is inert either way, so
// protocol structs can hold one by value before ever arming it.
type Timer struct {
	ev  *event
	gen uint32
	rt  *rtTimer
}

// Stop cancels the timer if it has not fired. It reports whether the
// cancellation prevented a pending firing. On the simulator the event
// stays in the heap as a tombstone; once tombstones exceed half the
// heap the simulator compacts it, so cancelled timers cannot leak. On
// real-time backends the caller must hold the backend lock (be inside
// a callback or Exec), which is already true of all protocol code.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.rt != nil {
		if t.rt.done {
			return false
		}
		t.rt.done = true
		t.rt.t.Stop()
		t.rt.clk.cancelled.Inc()
		return true
	}
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	if s := t.ev.sim; s != nil {
		s.cancelled.Inc()
		s.deadPending++
		s.maybeCompact()
	}
	return true
}

// Active reports whether the timer is still pending. The locking rule
// matches Stop's.
func (t *Timer) Active() bool {
	if t == nil {
		return false
	}
	if t.rt != nil {
		return !t.rt.done
	}
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

// Schedule runs fn after virtual delay d (clamped to ≥ 0).
func (s *Simulator) Schedule(d time.Duration, fn func()) *Timer {
	t := s.now + durTicks(d)
	if t < s.now {
		t = s.now
	}
	return s.ScheduleAt(t, fn)
}

// ScheduleAt runs fn at absolute virtual time at (clamped to ≥ now).
func (s *Simulator) ScheduleAt(at Time, fn func()) *Timer {
	e := s.post(at)
	e.fn = fn
	return &Timer{ev: e, gen: e.gen}
}

// ScheduleTimer is Schedule returning the Timer by value, for callers
// that hold the handle in a long-lived struct (Repeater, the
// transports' retransmission state) and should not allocate one per
// re-arm. A zero Timer is inert: Stop and Active are safe on it.
func (s *Simulator) ScheduleTimer(d time.Duration, fn func()) Timer {
	t := s.now + durTicks(d)
	if t < s.now {
		t = s.now
	}
	e := s.post(t)
	e.fn = fn
	return Timer{ev: e, gen: e.gen}
}

// post pushes a recycled (or fresh) event onto the heap at time at,
// clamped to ≥ now. The caller fills in the kind-specific fields.
func (s *Simulator) post(at Time) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.scheduled.Inc()
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at = at
		e.seq = s.seq
		e.dead = false
	} else {
		e = &event{at: at, seq: s.seq, sim: s}
	}
	heap.Push(&s.events, e)
	return e
}

// recycle returns an event that left the heap to the freelist.
func (s *Simulator) recycle(e *event) {
	e.gen++
	e.kind = evFunc
	e.fn = nil
	e.lnk = nil
	e.pkt = Packet{}
	s.free = append(s.free, e)
}

// Pending returns the number of events in the heap, tombstones
// included (tests and capacity planning).
func (s *Simulator) Pending() int { return len(s.events) }

// maybeCompact rebuilds the heap without tombstones once cancelled
// events outnumber live ones. Rebuilding is O(n), amortized O(1) per
// cancellation since at least half the heap is discarded each time.
func (s *Simulator) maybeCompact() {
	if s.deadPending*2 <= len(s.events) {
		return
	}
	live := make(eventHeap, 0, len(s.events)-s.deadPending)
	for _, e := range s.events {
		if !e.dead {
			live = append(live, e)
		} else {
			s.recycle(e)
		}
	}
	for i, e := range live {
		e.idx = i
	}
	s.events = live
	heap.Init(&s.events)
	s.deadPending = 0
}

// Step executes the next pending event. It reports false when the queue
// is empty.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.dead {
			s.deadPending--
			s.recycle(e)
			continue
		}
		e.dead = true // a fired timer is no longer Active
		s.now = e.at
		s.executed.Inc()
		s.dispatch(e)
		s.recycle(e)
		return true
	}
	return false
}

// dispatch runs one live event. Tagged kinds keep the per-packet link
// events closure-free; everything else goes through fn.
func (s *Simulator) dispatch(e *event) {
	switch e.kind {
	case evDeliver:
		e.lnk.deliver(&e.pkt)
	case evQueueFree:
		e.lnk.setQueued(e.lnk.queued - 1)
	default:
		e.fn()
	}
}

// Run executes events until the queue drains or the step limit is hit;
// it returns the number of events executed. A zero limit means no
// limit. Protocols with periodic timers never drain the queue, so most
// callers use RunFor or RunUntilIdle instead.
func (s *Simulator) Run(limit int) int {
	n := 0
	for (limit == 0 || n < limit) && s.Step() {
		n++
	}
	return n
}

// RunFor executes events for a span of virtual time, then stops with
// the clock advanced to exactly start+d.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now + durTicks(d))
}

// RunUntil executes all events scheduled strictly up to and including
// time t, then sets the clock to t.
func (s *Simulator) RunUntil(t Time) {
	for len(s.events) > 0 {
		// Peek.
		e := s.events[0]
		if e.dead {
			heap.Pop(&s.events)
			s.deadPending--
			s.recycle(e)
			continue
		}
		if e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Steps returns the total number of events executed, a cheap progress
// metric for benchmarks. It reads the same counter the metrics
// registry exports as "netsim/events/executed".
func (s *Simulator) Steps() uint64 { return s.executed.Value() }

// Every schedules fn to run every interval until the returned Repeater
// is stopped. The first firing is after one interval.
func (s *Simulator) Every(interval time.Duration, fn func()) *Repeater {
	return newRepeater(s, interval, fn)
}

// timerScheduler is the sliver of Backend a Repeater needs to re-arm;
// both the Simulator and the RTClock satisfy it.
type timerScheduler interface {
	ScheduleTimer(d time.Duration, fn func()) Timer
}

// Repeater is a periodic timer, usable on any backend.
type Repeater struct {
	sched    timerScheduler
	interval time.Duration
	fn       func()
	tick     func() // built once; re-arming allocates nothing
	t        Timer
	stopped  bool
}

func newRepeater(s timerScheduler, interval time.Duration, fn func()) *Repeater {
	r := &Repeater{sched: s, interval: interval, fn: fn}
	r.tick = func() {
		if r.stopped {
			return
		}
		r.fn()
		if !r.stopped {
			r.arm()
		}
	}
	r.arm()
	return r
}

func (r *Repeater) arm() {
	r.t = r.sched.ScheduleTimer(r.interval, r.tick)
}

// Stop cancels future firings.
func (r *Repeater) Stop() {
	r.stopped = true
	r.t.Stop()
}

func (s *Simulator) String() string {
	return fmt.Sprintf("sim(t=%v, pending=%d, steps=%d)", s.now, len(s.events), s.executed.Value())
}
