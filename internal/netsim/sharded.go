package netsim

// Sharded is the parallel discrete-event engine: the topology is
// partitioned into per-shard event heaps (evCore), synchronized by
// conservative lookahead windows, with cross-shard packet delivery
// through batched, sequence-numbered mailboxes — the classic
// null-message/time-bucket design.
//
// # Determinism
//
// Every event carries the canonical key (at, schedAt, rank, seq):
// execution time, scheduling time, the scheduling node's stable rank,
// and that node's local sequence number. The heap comparator orders by
// the full key, so the order in which mailbox entries are ingested —
// or shards interleave — is irrelevant: the key alone decides. Ranks
// are assigned per node view in creation order, independent of the
// shard count, so shards=1, shards=4 and the sequential simulator all
// execute the same schedule and produce byte-identical metrics at any
// GOMAXPROCS.
//
// # Lookahead
//
// The lookahead L is the minimum propagation delay over all
// cross-shard links (cut links must have positive delay — enforced at
// link creation). A window runs every shard in parallel up to
// min(T0+L, target) where T0 is the global minimum next-event time;
// any packet sent during the window arrives no earlier than T0+L, so
// it can always be mailed to its destination shard at the barrier
// before that shard's clock reaches it. The flush asserts this ("torn
// lookahead") instead of trusting it.
//
// # Control events
//
// Driver-context schedules (Schedule/ScheduleTimer/Every on the
// engine: workload dials, fault injections, watchdog arms) go to a
// dedicated control core with rank ctlRank, above every node rank —
// matching the sequential rule that a driver's schedule call always
// has a later global sequence number than protocol events scheduled
// at the same instant. Control events execute serially at barriers
// with every shard parked and run up to the control event's full key.
//
// # Single-writer metrics
//
// Counters are plain uint64 (no atomics). Each instrument has exactly
// one writing shard; cross-window reads happen at barriers, whose
// synchronization provides the happens-before. Per-shard event
// counters export under the sequential names via metrics.CounterSum.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// ctlRank orders driver-context (control) events after every node
// view's events at the same (at, schedAt).
const ctlRank = int32(1) << 30

// Sharder is implemented by backends that partition the world into
// shards. Topology builders detect it to place each node on a shard
// via NodeView; everything else keeps talking plain Backend.
type Sharder interface {
	// Shards returns the number of shards (≥ 1).
	Shards() int
	// NodeView returns a Backend view pinned to the given shard for
	// one node. Views must be created in a deterministic order — the
	// creation index is the node's rank in the event-ordering key, and
	// must not depend on the shard count.
	NodeView(shard int) Backend
}

// LinkOn creates a unidirectional link from the src backend delivering
// into dstB's shard. On non-sharded backends (or when dstB is nil or
// equal to src) it is plain NewLink; on the sharded engine it wires
// the cross-shard mailbox path when src and dst live on different
// shards.
func LinkOn(src Backend, cfg LinkConfig, dst Handler, dstB Backend) Port {
	type linkTo interface {
		NewLinkTo(cfg LinkConfig, dst Handler, dstB Backend) Port
	}
	if lt, ok := src.(linkTo); ok && dstB != nil {
		return lt.NewLinkTo(cfg, dst, dstB)
	}
	return src.NewLink(cfg, dst)
}

// mail is one cross-shard delivery waiting for the next barrier: the
// full ordering key plus the packet. The buffer hand-off is explicit —
// the sending shard appends and never touches data again; the
// receiving shard owns it once the barrier flush ingests the entry.
type mail struct {
	at      Time
	schedAt Time
	rank    int32
	seq     uint64
	lnk     *Link
	data    []byte
	ecn     bool
}

// windowBound broadcasts one window's exclusive event-key bound to the
// shard workers.
type windowBound struct {
	at      Time
	schedAt Time
	rank    int32
	seq     uint64
}

// Sharded implements Backend (driver surface) and Sharder.
type Sharded struct {
	seed  int64
	now   Time // barrier clock: all shards have completed up to here
	cores []*evCore
	ctl   evCore // driver/control events, rank ctlRank
	views []*view
	// look is the conservative lookahead: the minimum delay over
	// cross-shard links. Zero means no cut links yet (infinite
	// lookahead).
	look Time
	// mbox[src][dst] holds deliveries from shard src into shard dst.
	// Exactly one shard appends to each slice during a window (the
	// single-writer rule); barriers drain them all.
	mbox    [][][]mail
	msc     *metrics.Scope
	linkSeq int
	tracer  Tracer
	rng     *rand.Rand
	root    *view // lazy view backing engine-level NewLink

	started bool
	work    []chan windowBound
	wg      sync.WaitGroup
	running bool
}

// NewSharded builds a sharded engine with the given shard count
// (clamped to ≥ 1). When reg is non-nil the per-shard event counters
// register under the sequential names ("netsim/events/...") as sums.
func NewSharded(seed int64, shards int, reg *metrics.Registry) *Sharded {
	if shards < 1 {
		shards = 1
	}
	e := &Sharded{seed: seed, rng: rand.New(rand.NewSource(seed))}
	e.cores = make([]*evCore, shards)
	for i := range e.cores {
		e.cores[i] = &evCore{}
	}
	e.mbox = make([][][]mail, shards)
	for i := range e.mbox {
		e.mbox[i] = make([][]mail, shards)
	}
	if reg != nil {
		e.msc = reg.Scope("netsim")
		sc := e.msc.Sub("events")
		var sched, exec, canc metrics.CounterSum
		for _, c := range e.cores {
			sched = append(sched, &c.scheduled)
			exec = append(exec, &c.executed)
			canc = append(canc, &c.cancelled)
		}
		sched = append(sched, &e.ctl.scheduled)
		exec = append(exec, &e.ctl.executed)
		canc = append(canc, &e.ctl.cancelled)
		sc.Register("scheduled", sched)
		sc.Register("executed", exec)
		sc.Register("cancelled", canc)
	}
	return e
}

// Shards implements Sharder.
func (e *Sharded) Shards() int { return len(e.cores) }

// NodeView implements Sharder: it returns a Backend pinned to shard,
// with the next creation-order rank. The rank sequence must be the
// same for every shard count, which topology builders guarantee by
// creating views in sorted node order.
func (e *Sharded) NodeView(shard int) Backend {
	if shard < 0 || shard >= len(e.cores) {
		panic(fmt.Sprintf("netsim: NodeView shard %d out of range [0,%d)", shard, len(e.cores)))
	}
	rank := int32(len(e.views))
	v := &view{
		eng:   e,
		core:  e.cores[shard],
		shard: shard,
		rank:  rank,
		rng:   rand.New(rand.NewSource(e.seed ^ (int64(rank)+1)*0x7F4A7C159E3779B9)),
	}
	e.views = append(e.views, v)
	return v
}

// Name identifies the sharded engine.
func (e *Sharded) Name() string { return "sharded" }

// Now returns the barrier clock — the time up to which every shard has
// completed. Protocol code reads time through its node view, never
// through the engine.
func (e *Sharded) Now() Time { return e.now }

// Rand is the engine-level random source (driver use only; node views
// carry their own rank-derived streams).
func (e *Sharded) Rand() *rand.Rand { return e.rng }

// postCtl pushes a control event (driver context, rank ctlRank).
func (e *Sharded) postCtl(at Time) *event {
	if at < e.now {
		at = e.now
	}
	e.ctl.seq++
	return e.ctl.post(at, e.now, ctlRank, e.ctl.seq)
}

// Schedule runs fn once after delay d in driver (control) context: the
// event executes serially at a barrier with every shard parked.
func (e *Sharded) Schedule(d time.Duration, fn func()) *Timer {
	ev := e.postCtl(e.now + durTicks(d))
	ev.fn = fn
	return &Timer{ev: ev, gen: ev.gen}
}

// ScheduleTimer is Schedule returning the Timer by value.
func (e *Sharded) ScheduleTimer(d time.Duration, fn func()) Timer {
	ev := e.postCtl(e.now + durTicks(d))
	ev.fn = fn
	return Timer{ev: ev, gen: ev.gen}
}

// Every runs fn periodically in driver context.
func (e *Sharded) Every(interval time.Duration, fn func()) *Repeater {
	return newRepeater(e, interval, fn)
}

// NewLink creates a link on a lazily created default view (shard 0).
// World builders should create links between node views via LinkOn;
// this path serves ad-hoc wiring directly on the backend.
func (e *Sharded) NewLink(cfg LinkConfig, dst Handler) Port {
	if e.root == nil {
		e.root = e.NodeView(0).(*view)
	}
	return e.root.NewLink(cfg, dst)
}

// RunFor advances the engine by d of virtual time.
func (e *Sharded) RunFor(d time.Duration) { e.RunUntil(e.now + durTicks(d)) }

// Steps returns the total events executed across every shard and the
// control core.
func (e *Sharded) Steps() uint64 {
	n := e.ctl.executed.Value()
	for _, c := range e.cores {
		n += c.executed.Value()
	}
	return n
}

// Pending counts events waiting in every shard heap, the control heap
// and the mailboxes, tombstones included — the shard-aware version of
// Simulator.Pending.
func (e *Sharded) Pending() int {
	n := len(e.ctl.events)
	for _, c := range e.cores {
		n += len(c.events)
	}
	for si := range e.mbox {
		for di := range e.mbox[si] {
			n += len(e.mbox[si][di])
		}
	}
	return n
}

// Exec runs fn in driver context. All shards are parked between Run*
// calls and the barrier's synchronization makes their writes visible,
// so an inline call is safe, exactly like the sequential simulator.
func (e *Sharded) Exec(fn func()) { fn() }

// SetTracer attaches the causal tracer. With more than one shard the
// tracer is wrapped in a serializing adapter — emission order across
// shards is an execution artifact, so trace artifact byte-gates stay
// pinned to the sequential backend, but the content remains complete
// and race-free.
func (e *Sharded) SetTracer(t Tracer) {
	if t != nil && len(e.cores) > 1 {
		t = &lockedTracer{t: t}
	}
	e.tracer = t
}

// Tracer returns the attached tracer (possibly the serializing
// wrapper), or nil.
func (e *Sharded) Tracer() Tracer { return e.tracer }

// Close stops the shard workers.
func (e *Sharded) Close() error {
	if e.work != nil {
		for _, ch := range e.work {
			close(ch)
		}
		e.work = nil
	}
	return nil
}

// ensureWorkers starts one goroutine per shard (none for a single
// shard). Workers park on their channel between windows; the
// send/Wait pair is the barrier synchronization that publishes each
// window's writes to the driver and the other shards.
func (e *Sharded) ensureWorkers() {
	if e.started {
		return
	}
	e.started = true
	if len(e.cores) == 1 {
		return
	}
	e.work = make([]chan windowBound, len(e.cores))
	for i := range e.cores {
		ch := make(chan windowBound, 1)
		e.work[i] = ch
		c := e.cores[i]
		go func() {
			for b := range ch {
				c.runBefore(b.at, b.schedAt, b.rank, b.seq, e.tracer)
				e.wg.Done()
			}
		}()
	}
}

// runWindow executes every shard in parallel up to (exclusive) the
// given event key, then returns with all shards parked.
func (e *Sharded) runWindow(at, schedAt Time, rank int32, seq uint64) {
	if e.work == nil {
		e.cores[0].runBefore(at, schedAt, rank, seq, e.tracer)
		return
	}
	e.wg.Add(len(e.cores))
	b := windowBound{at: at, schedAt: schedAt, rank: rank, seq: seq}
	for _, ch := range e.work {
		ch <- b
	}
	e.wg.Wait()
}

// flush drains every mailbox into its destination heap. minAt is the
// completed horizon: an entry below it would have had to execute in a
// window that already ran — a torn lookahead — so it panics rather
// than silently diverging from the sequential schedule.
func (e *Sharded) flush(minAt Time) {
	for si := range e.mbox {
		for di := range e.mbox[si] {
			ms := e.mbox[si][di]
			if len(ms) == 0 {
				continue
			}
			dst := e.cores[di]
			for i := range ms {
				m := &ms[i]
				if m.at < minAt {
					panic(fmt.Sprintf("netsim: torn lookahead: cross-shard delivery at %v is before the completed horizon %v", m.at, minAt))
				}
				dst.postForeign(m.at, m.schedAt, m.rank, m.seq, m.lnk, Packet{Data: m.data, ECN: m.ecn})
				ms[i] = mail{} // ownership handed to the destination shard
			}
			e.mbox[si][di] = ms[:0]
		}
	}
}

// RunUntil executes all events with at ≤ t across every shard, then
// sets the barrier clock to t. Driver only, like every backend.
func (e *Sharded) RunUntil(t Time) {
	e.ensureWorkers()
	if e.running {
		panic("netsim: RunUntil re-entered on the sharded engine")
	}
	e.running = true
	defer func() { e.running = false }()
	// Driver code (Exec between Run* calls) may have sent through
	// cross-shard links; ingest that mail before the first window so
	// the window start accounts for it.
	e.flush(e.now)
	for {
		// Barrier state: find the global minimum next-event time.
		T0 := Time(math.MaxInt64)
		for _, c := range e.cores {
			if at, ok := c.nextAt(); ok && at < T0 {
				T0 = at
			}
		}
		ctlAt, ctlOK := e.ctl.nextAt()
		if ctlOK && ctlAt < T0 {
			T0 = ctlAt
		}
		if T0 > t {
			break
		}
		// Window horizon, exclusive on at: the budget, or one lookahead
		// past the window start when cut links bound it.
		h := t + 1
		if e.look > 0 {
			if w := T0 + e.look; w < h {
				h = w
			}
		}
		if ctlOK && ctlAt < h {
			// A control event falls inside the window: run every shard
			// strictly below its key, then execute it serially.
			ce := e.ctl.events[0]
			e.runWindow(ce.at, ce.schedAt, ce.rank, ce.seq)
			e.now = ce.at
			e.ctl.step(e.tracer)
			e.flush(ce.at)
			continue
		}
		e.runWindow(h, math.MinInt64, math.MinInt32, 0)
		if nw := h - 1; nw > e.now && nw <= t {
			e.now = nw
		}
		e.flush(h)
	}
	if e.now < t {
		e.now = t
	}
}

// --- node views ---

// view is one node's Backend handle on the sharded engine: it pins the
// node's events to a shard core and stamps them with the node's stable
// rank and local sequence — the identity half of the deterministic
// merge rule.
type view struct {
	eng   *Sharded
	core  *evCore
	shard int
	rank  int32
	seq   uint64
	rng   *rand.Rand
}

// effNow is the node's clock: its core's last executed time, or the
// barrier clock when the engine is further along (e.g. during a
// control event on an idle shard).
func (v *view) effNow() Time {
	if v.core.now > v.eng.now {
		return v.core.now
	}
	return v.eng.now
}

// post pushes an event with the view's identity, clamped to ≥ now.
func (v *view) post(at Time) *event {
	now := v.effNow()
	if at < now {
		at = now
	}
	v.seq++
	return v.core.post(at, now, v.rank, v.seq)
}

// Name identifies the backend kind.
func (v *view) Name() string { return "sharded" }

// Now returns the node's clock.
func (v *view) Now() Time { return v.effNow() }

// Rand is the node's random stream, derived from (seed, rank) so it is
// identical at every shard count.
func (v *view) Rand() *rand.Rand { return v.rng }

// Schedule runs fn after delay d on the node's shard.
func (v *view) Schedule(d time.Duration, fn func()) *Timer {
	e := v.post(v.effNow() + durTicks(d))
	e.fn = fn
	return &Timer{ev: e, gen: e.gen}
}

// ScheduleTimer is Schedule returning the Timer by value.
func (v *view) ScheduleTimer(d time.Duration, fn func()) Timer {
	e := v.post(v.effNow() + durTicks(d))
	e.fn = fn
	return Timer{ev: e, gen: e.gen}
}

// Every runs fn periodically on the node's shard.
func (v *view) Every(interval time.Duration, fn func()) *Repeater {
	return newRepeater(v, interval, fn)
}

// NewLink creates a shard-local link delivering to dst on this view's
// shard. For links whose destination lives on another node use LinkOn,
// which routes cross-shard destinations through the mailbox path.
func (v *view) NewLink(cfg LinkConfig, dst Handler) Port {
	return v.newLink(cfg, dst, v)
}

// NewLinkTo creates a link delivering into dstB's shard; dstB must be
// a view of the same engine. Same-shard destinations use the direct
// heap path; cross-shard destinations go through the mailbox and
// contribute their delay to the lookahead bound.
func (v *view) NewLinkTo(cfg LinkConfig, dst Handler, dstB Backend) Port {
	dv, ok := dstB.(*view)
	if !ok || dv.eng != v.eng {
		panic("netsim: NewLinkTo destination must be a view of the same sharded engine")
	}
	var env linkEnv = v
	if dv.core != v.core {
		if cfg.Delay <= 0 {
			panic("netsim: cross-shard link needs a positive delay (the conservative lookahead)")
		}
		if d := durTicks(cfg.Delay); v.eng.look == 0 || d < v.eng.look {
			v.eng.look = d
		}
		env = &xshardEnv{v: v, dst: dv.shard}
	}
	return v.newLink(cfg, dst, env)
}

func (v *view) newLink(cfg LinkConfig, dst Handler, env linkEnv) Port {
	if dst == nil {
		panic("netsim: NewLink with nil destination")
	}
	e := v.eng
	l := &Link{env: env, cfg: cfg, dst: dst, up: true,
		name: linkName(e.linkSeq),
		rng:  rand.New(rand.NewSource(linkSeed(e.seed, e.linkSeq)))}
	if e.msc != nil {
		l.m.Bind(e.msc.Sub(l.name))
	}
	e.linkSeq++
	return l
}

// RunFor, Steps, Exec, SetTracer, Tracer and Close delegate to the
// engine: they are driver surface, shared across every view.
func (v *view) RunFor(d time.Duration) { v.eng.RunFor(d) }
func (v *view) Steps() uint64          { return v.eng.Steps() }
func (v *view) Exec(fn func())         { v.eng.Exec(fn) }
func (v *view) SetTracer(t Tracer)     { v.eng.SetTracer(t) }
func (v *view) Tracer() Tracer         { return v.eng.tracer }
func (v *view) Close() error           { return v.eng.Close() }

// linkEnv: shard-local scheduling for links created on this view.
func (v *view) envNow() Time      { return v.effNow() }
func (v *view) envTracer() Tracer { return v.eng.tracer }

func (v *view) postDeliver(l *Link, at Time, data []byte, ecn bool) {
	e := v.post(at)
	e.kind = evDeliver
	e.lnk = l
	e.pkt = Packet{Data: data, ECN: ecn}
}

func (v *view) postQueueFree(l *Link, at Time) {
	e := v.post(at)
	e.kind = evQueueFree
	e.lnk = l
}

// xshardEnv is the send-side context of a cross-shard link: the
// serializer (queue-free events) stays on the sending shard, while
// deliveries are appended — with their full ordering key — to the
// sender's mailbox toward the destination shard.
type xshardEnv struct {
	v   *view
	dst int
}

func (x *xshardEnv) envNow() Time      { return x.v.effNow() }
func (x *xshardEnv) envTracer() Tracer { return x.v.eng.tracer }

func (x *xshardEnv) postQueueFree(l *Link, at Time) { x.v.postQueueFree(l, at) }

func (x *xshardEnv) postDeliver(l *Link, at Time, data []byte, ecn bool) {
	v := x.v
	now := v.effNow()
	if at < now {
		at = now
	}
	v.seq++
	// The schedule is accounted on the sending core (matching when the
	// sequential simulator counts it); the event itself materializes on
	// the destination core at the barrier flush.
	v.core.scheduled.Inc()
	box := &v.eng.mbox[v.shard][x.dst]
	*box = append(*box, mail{at: at, schedAt: now, rank: v.rank, seq: v.seq, lnk: l, data: data, ecn: ecn})
}

// lockedTracer serializes a Tracer shared by concurrent shards.
type lockedTracer struct {
	mu sync.Mutex
	t  Tracer
}

func (lt *lockedTracer) Stamp(buf []byte) uint64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.t.Stamp(buf)
}

func (lt *lockedTracer) ID(buf []byte) uint64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.t.ID(buf)
}

func (lt *lockedTracer) Emit(ev TraceEvent, frame []byte) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.t.Emit(ev, frame)
}

func (lt *lockedTracer) Retire(buf []byte) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.t.Retire(buf)
}
