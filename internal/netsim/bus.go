package netsim

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Bus models a shared broadcast medium (classic Ethernet segment or a
// radio channel) for the MAC sublayer experiments: all attached
// stations hear every transmission, simultaneous transmissions collide,
// and stations can carrier-sense the medium. Per the paper's data-link
// discussion, broadcast links "dispense with error recovery and do
// Media Access Control to guarantee that one sender at a time,
// eventually and fairly, gets access to the shared physical channel."
type Bus struct {
	sim      *Simulator
	rate     int64 // bits per second
	prop     time.Duration
	stations []*Station
	// busyUntil is when the medium goes idle; curStart is when the
	// current busy period began (carrier reaches other stations one
	// propagation delay later); collision tracks whether the period
	// contains overlapping transmissions.
	busyUntil Time
	curStart  Time
	collision bool
	// transmissions in the current busy period, delivered (or voided)
	// when it ends.
	inFlight []busTx
	m        busMetrics
}

type busTx struct {
	from *Station
	data []byte
}

// busMetrics counts medium-level outcomes.
type busMetrics struct {
	transmissions metrics.Counter
	collisions    metrics.Counter
	delivered     metrics.Counter
}

func (m *busMetrics) bind(sc *metrics.Scope) {
	sc.Register("transmissions", &m.transmissions)
	sc.Register("collisions", &m.collisions)
	sc.Register("delivered", &m.delivered)
}

// Station is one attachment point on the bus.
type Station struct {
	bus  *Bus
	id   int
	recv Handler
	// OnCollision, if set, is invoked when a transmission this station
	// participated in collides (its backoff trigger).
	OnCollision func()
}

// NewBus creates a shared medium with the given serialization rate and
// propagation delay.
func (s *Simulator) NewBus(rateBps int64, prop time.Duration) *Bus {
	if rateBps <= 0 {
		panic("netsim: bus rate must be positive")
	}
	b := &Bus{sim: s, rate: rateBps, prop: prop}
	if s.msc != nil {
		b.m.bind(s.msc.Sub(fmt.Sprintf("bus%d", s.busSeq)))
	}
	s.busSeq++
	return b
}

// Attach adds a station delivering received frames to recv.
func (b *Bus) Attach(recv Handler) *Station {
	st := &Station{bus: b, id: len(b.stations), recv: recv}
	b.stations = append(b.stations, st)
	return st
}

// Stats returns a view of the bus counters (keys: transmissions,
// collisions, delivered).
func (b *Bus) Stats() metrics.View {
	return metrics.View{
		"transmissions": b.m.transmissions.Value(),
		"collisions":    b.m.collisions.Value(),
		"delivered":     b.m.delivered.Value(),
	}
}

// Busy reports whether this station can hear a transmission on the
// medium. Carrier from a transmission that started less than one
// propagation delay ago has not yet reached the station, so the medium
// appears idle — the classic CSMA vulnerable window in which
// collisions happen.
func (st *Station) Busy() bool {
	b := st.bus
	now := b.sim.Now()
	if now >= b.busyUntil {
		return false
	}
	return now >= b.curStart+durTicks(b.prop)
}

// Transmit places a frame on the medium. If the medium is already busy
// the new transmission overlaps the ongoing one and the whole busy
// period is a collision: no station receives anything intelligible and
// every participating station's OnCollision fires when the period ends.
func (st *Station) Transmit(data []byte) {
	b := st.bus
	b.m.transmissions.Inc()
	now := b.sim.Now()
	txDur := Time(int64(len(data)) * 8 * int64(time.Second) / b.rate)
	end := now + txDur + durTicks(b.prop)

	if now < b.busyUntil {
		// Overlap: the busy period extends and is poisoned.
		b.collision = true
		if end > b.busyUntil {
			b.busyUntil = end
		}
		b.inFlight = append(b.inFlight, busTx{st, data})
		return
	}
	// Fresh busy period.
	b.busyUntil = end
	b.curStart = now
	b.collision = false
	b.inFlight = b.inFlight[:0]
	b.inFlight = append(b.inFlight, busTx{st, data})
	b.sim.ScheduleAt(end, func() { b.settle(end) })
}

// settle resolves a busy period at its (possibly extended) end time.
func (b *Bus) settle(scheduledEnd Time) {
	if b.busyUntil > scheduledEnd {
		// The period was extended by a colliding transmission; resolve
		// at the true end instead.
		b.sim.ScheduleAt(b.busyUntil, func() { b.settle(b.busyUntil) })
		return
	}
	txs := make([]busTx, len(b.inFlight))
	copy(txs, b.inFlight)
	b.inFlight = b.inFlight[:0]
	if b.collision {
		b.m.collisions.Inc()
		for _, tx := range txs {
			if tx.from.OnCollision != nil {
				tx.from.OnCollision()
			}
		}
		return
	}
	// Exactly one transmission: broadcast to every other station.
	tx := txs[0]
	for _, st := range b.stations {
		if st == tx.from {
			continue
		}
		b.m.delivered.Inc()
		st.recv(&Packet{Data: append([]byte(nil), tx.data...)})
	}
}
