package netsim

import (
	"math/rand"
	"time"

	"repro/internal/bufpool"
	"repro/internal/metrics"
)

// Backend is the substrate contract every layer above the links builds
// against: a clock, a seeded random source, one-shot and periodic
// timers, impaired point-to-point links with per-link metrics and trace
// identity, and a serialization point for external drivers.
//
// Three implementations exist:
//
//   - *Simulator (this package): virtual clock, deterministic event
//     heap. Exec is an inline call and Close a no-op; everything runs
//     single-threaded inside the event loop.
//   - channet.Network: goroutines plus real time.Timers, no virtual
//     clock; an in-process channel network.
//   - udpnet.Network: the same wire bytes framed over real UDP sockets
//     on loopback, impairments applied in userspace.
//
// The concurrency contract is the simulator's, generalized: protocol
// code always runs with the backend's internal lock held (trivially
// true on the simulator, a real mutex on the real-time backends), so
// protocols stay single-threaded and never lock anything themselves.
// External drivers — tests, the workload engine, anything outside a
// timer or delivery callback — must reach protocol state through Exec.
// Schedule/ScheduleTimer/Every and Port sends are safe from either
// side; RunFor must only be called by the driver, never from a
// callback.
type Backend interface {
	// Name identifies the backend kind: "sim", "chan" or "udp".
	Name() string
	// Now returns the backend's time: virtual on the simulator,
	// wall-clock nanoseconds since construction on real-time backends.
	Now() Time
	// Rand is the backend-owned random source; protocol code must use
	// it (never the global source) so simulator runs stay deterministic.
	Rand() *rand.Rand
	// Schedule runs fn once after delay d (clamped to ≥ 0).
	Schedule(d time.Duration, fn func()) *Timer
	// ScheduleTimer is Schedule returning the Timer by value for
	// callers that re-arm into a long-lived struct field.
	ScheduleTimer(d time.Duration, fn func()) Timer
	// Every runs fn periodically until the Repeater is stopped.
	Every(interval time.Duration, fn func()) *Repeater
	// NewLink creates a unidirectional impaired link delivering to dst.
	// Links are named "link<n>" in creation order on every backend;
	// that name is both the metrics scope ("netsim/link<n>") and the
	// trace/pcap interface identity.
	NewLink(cfg LinkConfig, dst Handler) Port
	// RunFor lets the world evolve for d: virtual time on the
	// simulator, a wall-clock sleep on real-time backends.
	RunFor(d time.Duration)
	// Steps counts callbacks and deliveries executed so far — the
	// cross-backend progress metric behind events/sec.
	Steps() uint64
	// Exec runs fn holding the backend's lock — the only safe way for
	// an external driver to touch protocol state. On the simulator it
	// is an inline call. fn must not call Exec or RunFor.
	Exec(fn func())
	// SetTracer attaches (nil detaches) the causal tracer. Call before
	// traffic flows, or from inside Exec.
	SetTracer(t Tracer)
	// Tracer returns the attached tracer, or nil when tracing is off.
	Tracer() Tracer
	// Close releases backend resources (goroutines, sockets) and
	// suppresses any still-pending timers. A no-op on the simulator.
	Close() error
}

// Port is one direction of an impaired point-to-point channel — the
// send side of what *Link implements on the simulator. Buffer
// ownership follows the simulator contract on every backend: SendOwned
// and SendPacket take ownership of the buffer; the destination handler
// owns what it is given; drops return buffers to the bufpool.
// Impairments never alias caller memory — any duplicate is deep-copied
// through CloneBuf, the Backend contract's single copy path.
type Port interface {
	// Name is the creation-order identity ("link0", "link1", ...).
	Name() string
	// Send copies data into a pooled buffer and transmits it.
	Send(data []byte)
	// SendOwned transmits data, taking ownership of the buffer.
	SendOwned(data []byte, ecn bool)
	// SendPacket is SendOwned for a packet that may carry an ECN mark.
	SendPacket(pkt *Packet)
	// SetUp raises or cuts the link; down links count down_drop.
	SetUp(up bool)
	// Up reports whether the link is passing traffic.
	Up() bool
	// SetLossProb replaces the random-loss probability at runtime.
	SetLossProb(p float64)
	// SetReorderProb replaces the reordering probability at runtime.
	SetReorderProb(p float64)
	// SetDupProb replaces the duplication probability at runtime.
	SetDupProb(p float64)
	// Stats views the link counters (sent, delivered, lost, ...).
	Stats() metrics.View
	// Config returns the link's configuration.
	Config() LinkConfig
}

// CloneBuf is the Backend contract's single deep-copy path: every
// packet duplication on every backend (simulator dup impairment,
// channel-network dup, udpnet dup) goes through it, so a duplicate can
// never alias the original buffer. The clone comes from the bufpool
// and follows the usual ownership rules.
func CloneBuf(data []byte) []byte {
	dup := bufpool.Get(len(data))
	copy(dup, data)
	return dup
}

// NewDuplexOn builds a symmetric bidirectional link on any backend,
// with the same config in each direction, delivering to the two
// handlers. It is the backend-agnostic form of Simulator.NewDuplex.
func NewDuplexOn(b Backend, cfg LinkConfig, toA, toB Handler) *Duplex {
	return &Duplex{AB: b.NewLink(cfg, toB), BA: b.NewLink(cfg, toA)}
}

// NewDuplexBetween builds a duplex whose endpoints may live on
// different node views of a sharded engine: each direction is created
// on its sender's backend and delivers into the receiver's shard via
// LinkOn. With ba == bb (or any non-sharded backend) it degenerates to
// NewDuplexOn, creating the same links in the same order.
func NewDuplexBetween(ba, bb Backend, cfg LinkConfig, toA, toB Handler) *Duplex {
	return &Duplex{AB: LinkOn(ba, cfg, toB, bb), BA: LinkOn(bb, cfg, toA, ba)}
}

// Name identifies the simulator backend.
func (s *Simulator) Name() string { return "sim" }

// Exec runs fn inline: the simulator is single-threaded, so the
// driver already has exclusive access between Run* calls.
func (s *Simulator) Exec(fn func()) { fn() }

// Close is a no-op on the simulator; it exists to satisfy Backend so
// drivers can unconditionally defer w.Close().
func (s *Simulator) Close() error { return nil }
