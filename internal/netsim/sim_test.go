package netsim

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSimulator(1)
	var got []int
	s.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSimulator(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := NewSimulator(1)
	fired := false
	tm := s.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Active() {
		t.Error("timer not active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	s.Run(0)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator(1)
	var at []Time
	s.Schedule(time.Millisecond, func() {
		at = append(at, s.Now())
		s.Schedule(time.Millisecond, func() { at = append(at, s.Now()) })
	})
	s.Run(0)
	if len(at) != 2 || at[0] != Time(time.Millisecond) || at[1] != Time(2*time.Millisecond) {
		t.Errorf("at = %v", at)
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := NewSimulator(1)
	s.Schedule(time.Millisecond, func() {
		s.ScheduleAt(0, func() {})
	})
	s.Run(0)
	if s.Now() != Time(time.Millisecond) {
		t.Errorf("clock moved backwards: %v", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := NewSimulator(1)
	ran := 0
	s.Schedule(time.Millisecond, func() { ran++ })
	s.Schedule(5*time.Millisecond, func() { ran++ })
	s.RunFor(2 * time.Millisecond)
	if ran != 1 {
		t.Errorf("ran = %d after 2ms", ran)
	}
	if s.Now() != Time(2*time.Millisecond) {
		t.Errorf("Now = %v", s.Now())
	}
	s.RunFor(10 * time.Millisecond)
	if ran != 2 {
		t.Errorf("ran = %d after 12ms", ran)
	}
}

func TestRunLimit(t *testing.T) {
	s := NewSimulator(1)
	for i := 0; i < 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if n := s.Run(3); n != 3 {
		t.Errorf("Run(3) executed %d", n)
	}
	if n := s.Run(0); n != 2 {
		t.Errorf("drain executed %d", n)
	}
}

func TestRepeater(t *testing.T) {
	s := NewSimulator(1)
	count := 0
	r := s.Every(time.Second, func() { count++ })
	s.RunFor(5500 * time.Millisecond)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	r.Stop()
	s.RunFor(5 * time.Second)
	if count != 5 {
		t.Errorf("repeater fired after Stop: %d", count)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int {
		s := NewSimulator(seed)
		var delivered []int
		link := s.NewLink(LinkConfig{
			Delay: time.Millisecond, Jitter: time.Millisecond,
			LossProb: 0.3, DupProb: 0.1, ReorderProb: 0.2,
		}, func(p *Packet) { delivered = append(delivered, int(p.Data[0])) })
		for i := 0; i < 100; i++ {
			link.Send([]byte{byte(i)})
		}
		s.Run(0)
		return delivered
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical impairment pattern (suspicious)")
	}
}

func TestLinkDelay(t *testing.T) {
	s := NewSimulator(1)
	var at Time
	l := s.NewLink(LinkConfig{Delay: 10 * time.Millisecond}, func(p *Packet) { at = s.Now() })
	l.Send([]byte("x"))
	s.Run(0)
	if at != Time(10*time.Millisecond) {
		t.Errorf("delivered at %v", at)
	}
}

func TestLinkSerializationRate(t *testing.T) {
	s := NewSimulator(1)
	var times []Time
	// 8000 bits/sec: a 1000-byte packet takes exactly 1 second.
	l := s.NewLink(LinkConfig{RateBps: 8000}, func(p *Packet) { times = append(times, s.Now()) })
	l.Send(make([]byte, 1000))
	l.Send(make([]byte, 1000))
	s.Run(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != Time(time.Second) || times[1] != Time(2*time.Second) {
		t.Errorf("times = %v", times)
	}
}

func TestLinkQueueDrop(t *testing.T) {
	s := NewSimulator(1)
	n := 0
	l := s.NewLink(LinkConfig{RateBps: 8000, QueueLimit: 2}, func(p *Packet) { n++ })
	for i := 0; i < 10; i++ {
		l.Send(make([]byte, 1000))
	}
	s.Run(0)
	if st := l.Stats(); st["queue_drop"] == 0 {
		t.Error("no queue drops with tiny queue")
	}
	if n >= 10 {
		t.Errorf("all packets delivered despite queue limit: %d", n)
	}
}

func TestLinkECNMarking(t *testing.T) {
	s := NewSimulator(1)
	marked := 0
	l := s.NewLink(LinkConfig{RateBps: 8000, QueueLimit: 100, ECNThreshold: 2},
		func(p *Packet) {
			if p.ECN {
				marked++
			}
		})
	for i := 0; i < 10; i++ {
		l.Send(make([]byte, 1000))
	}
	s.Run(0)
	if marked == 0 {
		t.Error("no ECN marks despite standing queue")
	}
	if st := l.Stats(); st["ecn_marked"] != uint64(marked) {
		t.Errorf("stats.ECNMarked=%d delivered marked=%d", st["ecn_marked"], marked)
	}
}

func TestLinkLossAll(t *testing.T) {
	s := NewSimulator(1)
	n := 0
	l := s.NewLink(LinkConfig{LossProb: 1}, func(p *Packet) { n++ })
	for i := 0; i < 50; i++ {
		l.Send([]byte("x"))
	}
	s.Run(0)
	if n != 0 {
		t.Errorf("delivered %d with loss=1", n)
	}
	if st := l.Stats(); st["lost"] != 50 {
		t.Errorf("Lost = %d", st["lost"])
	}
}

func TestLinkDuplication(t *testing.T) {
	s := NewSimulator(3)
	n := 0
	l := s.NewLink(LinkConfig{DupProb: 1}, func(p *Packet) { n++ })
	for i := 0; i < 20; i++ {
		l.Send([]byte("x"))
	}
	s.Run(0)
	if n != 40 {
		t.Errorf("delivered %d with dup=1, want 40", n)
	}
}

func TestLinkCorruptionFlipsOneBit(t *testing.T) {
	s := NewSimulator(5)
	orig := []byte{0xAA, 0xBB, 0xCC}
	var got []byte
	l := s.NewLink(LinkConfig{CorruptProb: 1}, func(p *Packet) { got = p.Data })
	l.Send(orig)
	s.Run(0)
	diff := 0
	for i := range orig {
		x := orig[i] ^ got[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want 1", diff)
	}
	if orig[0] != 0xAA {
		t.Error("corruption mutated the caller's buffer")
	}
}

func TestLinkReorderingObserved(t *testing.T) {
	s := NewSimulator(11)
	var order []int
	l := s.NewLink(LinkConfig{Delay: time.Millisecond, ReorderProb: 0.5},
		func(p *Packet) { order = append(order, int(p.Data[0])) })
	for i := 0; i < 50; i++ {
		l.Send([]byte{byte(i)})
	}
	s.Run(0)
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("no reordering observed with reorder=0.5")
	}
}

func TestLinkDown(t *testing.T) {
	s := NewSimulator(1)
	n := 0
	l := s.NewLink(LinkConfig{}, func(p *Packet) { n++ })
	l.SetUp(false)
	l.Send([]byte("x"))
	s.Run(0)
	if n != 0 {
		t.Error("down link delivered")
	}
	l.SetUp(true)
	l.Send([]byte("x"))
	s.Run(0)
	if n != 1 {
		t.Error("restored link did not deliver")
	}
}

func TestLinkDataCopied(t *testing.T) {
	s := NewSimulator(1)
	buf := []byte{1, 2, 3}
	var got []byte
	l := s.NewLink(LinkConfig{Delay: time.Millisecond}, func(p *Packet) { got = p.Data })
	l.Send(buf)
	buf[0] = 99 // mutate after send
	s.Run(0)
	if got[0] != 1 {
		t.Error("link aliased the caller's buffer")
	}
}

func TestDuplexBothDirections(t *testing.T) {
	s := NewSimulator(1)
	var atA, atB []byte
	d := s.NewDuplex(LinkConfig{Delay: time.Millisecond},
		func(p *Packet) { atA = p.Data },
		func(p *Packet) { atB = p.Data })
	d.AB.Send([]byte("to-b"))
	d.BA.Send([]byte("to-a"))
	s.Run(0)
	if string(atB) != "to-b" || string(atA) != "to-a" {
		t.Errorf("atA=%q atB=%q", atA, atB)
	}
	d.SetUp(false)
	if d.AB.Up() || d.BA.Up() {
		t.Error("SetUp(false) did not cut both directions")
	}
}

func TestBusSingleTransmission(t *testing.T) {
	s := NewSimulator(1)
	b := s.NewBus(1_000_000, time.Microsecond)
	var got [3][]byte
	var sts [3]*Station
	for i := 0; i < 3; i++ {
		i := i
		sts[i] = b.Attach(func(p *Packet) { got[i] = p.Data })
	}
	sts[0].Transmit([]byte("hello"))
	s.Run(0)
	if got[0] != nil {
		t.Error("sender received its own frame")
	}
	if string(got[1]) != "hello" || string(got[2]) != "hello" {
		t.Errorf("receivers got %q, %q", got[1], got[2])
	}
}

func TestBusCollision(t *testing.T) {
	s := NewSimulator(1)
	b := s.NewBus(1_000_000, time.Microsecond)
	received := 0
	collided := [2]bool{}
	st0 := b.Attach(func(p *Packet) { received++ })
	st1 := b.Attach(func(p *Packet) { received++ })
	st0.OnCollision = func() { collided[0] = true }
	st1.OnCollision = func() { collided[1] = true }
	// Both transmit at t=0: guaranteed overlap.
	st0.Transmit(make([]byte, 100))
	st1.Transmit(make([]byte, 100))
	s.Run(0)
	if received != 0 {
		t.Errorf("collision delivered %d frames", received)
	}
	if !collided[0] || !collided[1] {
		t.Errorf("collision callbacks = %v", collided)
	}
	if st := b.Stats(); st["collisions"] != 1 {
		t.Errorf("Collisions = %d", st["collisions"])
	}
}

func TestBusCarrierSense(t *testing.T) {
	s := NewSimulator(1)
	b := s.NewBus(8_000, 0) // 1000-byte frame = 1s
	st0 := b.Attach(func(p *Packet) {})
	st1 := b.Attach(func(p *Packet) {})
	st0.Transmit(make([]byte, 1000))
	sensed := false
	s.Schedule(500*time.Millisecond, func() { sensed = st1.Busy() })
	idle := true
	s.Schedule(1500*time.Millisecond, func() { idle = !st1.Busy() })
	s.Run(0)
	if !sensed {
		t.Error("carrier not sensed mid-transmission")
	}
	if !idle {
		t.Error("carrier sensed after transmission ended")
	}
}

func TestBusSequentialNoCollision(t *testing.T) {
	s := NewSimulator(1)
	b := s.NewBus(1_000_000, 0)
	n := 0
	st0 := b.Attach(func(p *Packet) { n++ })
	b.Attach(func(p *Packet) { n++ })
	_ = st0
	st2 := b.Attach(func(p *Packet) { n++ })
	st2.Transmit(make([]byte, 10))
	s.Schedule(time.Second, func() { st2.Transmit(make([]byte, 10)) })
	s.Run(0)
	if st := b.Stats(); st["collisions"] != 0 {
		t.Errorf("Collisions = %d", st["collisions"])
	}
	if n != 4 {
		t.Errorf("delivered %d, want 4", n)
	}
}

func BenchmarkSimulatorScheduleRun(b *testing.B) {
	s := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			s.Run(0)
		}
	}
	s.Run(0)
}

func BenchmarkLinkSend(b *testing.B) {
	s := NewSimulator(1)
	l := s.NewLink(LinkConfig{Delay: time.Millisecond, LossProb: 0.01}, func(p *Packet) {})
	data := make([]byte, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Send(data)
		if i%1024 == 1023 {
			s.Run(0)
		}
	}
	s.Run(0)
}

func TestLinkDownMidFlight(t *testing.T) {
	// A packet already in flight when the link is cut must not arrive.
	s := NewSimulator(51)
	n := 0
	l := s.NewLink(LinkConfig{Delay: 10 * time.Millisecond}, func(p *Packet) { n++ })
	l.Send([]byte("doomed"))
	s.Schedule(5*time.Millisecond, func() { l.SetUp(false) })
	s.Run(0)
	if n != 0 {
		t.Error("packet delivered over a cut link")
	}
	if l.Stats()["down_drop"] == 0 {
		t.Error("in-flight down-link drop not counted")
	}
}

func TestLinkDownDropAndSetLossProb(t *testing.T) {
	// Downed-link drops count as down_drop, not lost; SetLossProb
	// retunes random loss at runtime (the fault injector's GE overlay).
	s := NewSimulator(53)
	n := 0
	l := s.NewLink(LinkConfig{}, func(p *Packet) { n++ })
	l.SetUp(false)
	for i := 0; i < 5; i++ {
		l.Send([]byte("x"))
	}
	s.Run(0)
	if st := l.Stats(); st["down_drop"] != 5 || st["lost"] != 0 {
		t.Errorf("down_drop=%d lost=%d, want 5/0", st["down_drop"], st["lost"])
	}
	l.SetUp(true)
	l.SetLossProb(1)
	for i := 0; i < 5; i++ {
		l.Send([]byte("x"))
	}
	s.Run(0)
	if n != 0 {
		t.Errorf("delivered %d with loss=1", n)
	}
	if st := l.Stats(); st["lost"] != 5 {
		t.Errorf("lost=%d after SetLossProb(1), want 5", st["lost"])
	}
	l.SetLossProb(0)
	l.Send([]byte("x"))
	s.Run(0)
	if n != 1 {
		t.Errorf("delivered %d after SetLossProb(0), want 1", n)
	}
}

func TestBusThreeWayCollisionExtendsPeriod(t *testing.T) {
	// A third transmission joining an already-collided period extends
	// it; everyone involved gets exactly one collision callback set.
	s := NewSimulator(52)
	b := s.NewBus(8_000, 0) // 1000B = 1s
	var collided [3]bool
	received := 0
	sts := make([]*Station, 3)
	for i := range sts {
		i := i
		sts[i] = b.Attach(func(p *Packet) { received++ })
		sts[i].OnCollision = func() { collided[i] = true }
	}
	sts[0].Transmit(make([]byte, 1000))
	s.Schedule(200*time.Millisecond, func() { sts[1].Transmit(make([]byte, 1000)) })
	s.Schedule(900*time.Millisecond, func() { sts[2].Transmit(make([]byte, 1000)) })
	s.Run(0)
	if received != 0 {
		t.Errorf("collided frames delivered: %d", received)
	}
	if !collided[0] || !collided[1] || !collided[2] {
		t.Errorf("collision callbacks = %v", collided)
	}
	if st := b.Stats(); st["collisions"] != 1 {
		t.Errorf("Collisions = %d, want 1 (one extended busy period)", st["collisions"])
	}
}

func TestRepeaterStopInsideCallback(t *testing.T) {
	s := NewSimulator(53)
	count := 0
	var r *Repeater
	r = s.Every(time.Second, func() {
		count++
		if count == 2 {
			r.Stop()
		}
	})
	s.RunFor(10 * time.Second)
	if count != 2 {
		t.Errorf("count = %d after self-stop", count)
	}
}

func TestTimerActiveLifecycle(t *testing.T) {
	s := NewSimulator(54)
	tm := s.Schedule(time.Millisecond, func() {})
	if !tm.Active() {
		t.Error("pending timer not active")
	}
	s.Run(0)
	if tm.Active() {
		t.Error("fired timer still active")
	}
	if tm.Stop() {
		t.Error("Stop on fired timer returned true")
	}
	var nilT *Timer
	if nilT.Active() || nilT.Stop() {
		t.Error("nil timer misbehaves")
	}
}

func TestHeapCompaction(t *testing.T) {
	s := NewSimulator(1)
	reg := metrics.New()
	s2 := NewSimulator(1, WithMetrics(reg))
	for _, sim := range []*Simulator{s, s2} {
		var timers []*Timer
		for i := 0; i < 1000; i++ {
			d := time.Duration(i+1) * time.Millisecond
			timers = append(timers, sim.Schedule(d, func() {}))
		}
		// Cancel all but the last 10: tombstones must not linger until
		// their (far-future) deadlines pop them.
		for _, tm := range timers[:990] {
			tm.Stop()
		}
		if p := sim.Pending(); p > 500 {
			t.Errorf("heap holds %d events after cancelling 990/1000; compaction did not run", p)
		}
		sim.Run(0)
	}
	snap := reg.Snapshot()
	if v := snap.Value("netsim/events/cancelled"); v != 990 {
		t.Errorf("netsim/events/cancelled = %d, want 990", v)
	}
	if v := snap.Value("netsim/events/executed"); v != 10 {
		t.Errorf("netsim/events/executed = %d, want 10", v)
	}
}

func TestHeapCompactionPreservesOrdering(t *testing.T) {
	// The same interleaved schedule-and-cancel pattern must fire the
	// surviving events in the same deterministic order whether or not a
	// compaction happens in between.
	run := func(cancelN int) []int {
		sim := NewSimulator(7)
		var got []int
		var victims []*Timer
		for i := 0; i < 200; i++ {
			i := i
			tm := sim.Schedule(time.Duration(200-i)*time.Millisecond, func() { got = append(got, i) })
			if i%2 == 0 {
				victims = append(victims, tm)
			}
		}
		for _, tm := range victims[:cancelN] {
			tm.Stop()
		}
		// Cancel the rest too, after any compaction has happened.
		for _, tm := range victims[cancelN:] {
			tm.Stop()
		}
		sim.Run(0)
		return got
	}
	a, b := run(0), run(90)
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStopAfterCompactionIsNoop(t *testing.T) {
	sim := NewSimulator(1)
	var timers []*Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, sim.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	for _, tm := range timers[:80] {
		tm.Stop()
	}
	// Stopping an already-cancelled timer (now evicted from the heap)
	// must report false and not corrupt the tombstone accounting.
	for _, tm := range timers[:80] {
		if tm.Stop() {
			t.Fatal("double Stop reported true")
		}
	}
	n := 0
	for sim.Step() {
		n++
	}
	if n != 20 {
		t.Errorf("executed %d events, want 20", n)
	}
}
