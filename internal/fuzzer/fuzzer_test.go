package fuzzer

import (
	"encoding/json"
	"testing"
)

// TestNewCaseDeterministic: a reproducer is just a seed, so the whole
// case must be a pure function of it.
func TestNewCaseDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, _ := NewCase(seed).MarshalIndent()
		b, _ := NewCase(seed).MarshalIndent()
		if string(a) != string(b) {
			t.Fatalf("seed %d: case not deterministic:\n%s\n%s", seed, a, b)
		}
	}
}

func TestCaseRoundTripsJSON(t *testing.T) {
	c := NewCase(7)
	b, err := c.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseCase(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := back.MarshalIndent()
	if string(b) != string(b2) {
		t.Errorf("round trip unstable:\n%s\n%s", b, b2)
	}
}

// TestRunCleanSeeds: the generator's healing envelope plus a correct
// transport must mean a green differential verdict. A red verdict here
// is either a real transport bug or a generator schedule harsh enough
// to starve a correct stack — both need a human.
func TestRunCleanSeeds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := NewCase(seed)
		v := Run(c)
		if !v.OK() {
			t.Errorf("seed %d failed: %s\ncase: %s", seed, v.Summary(), c)
		}
		for _, s := range v.Stacks {
			if s.FramesSeen == 0 {
				t.Errorf("seed %d %s: codec oracle saw no frames", seed, s.Stack)
			}
		}
	}
}

// TestRunDeterministic: same case, same verdict, byte for byte — the
// property that makes a corpus file a reproducer at all.
func TestRunDeterministic(t *testing.T) {
	c := NewCase(3)
	v1, _ := json.Marshal(Run(c))
	v2, _ := json.Marshal(Run(c))
	if string(v1) != string(v2) {
		t.Errorf("same case, diverging verdicts:\n%s\n%s", v1, v2)
	}
}

// TestCorpusReplays: every committed reproducer must load and pass on
// the current code — the corpus is the regression suite the fuzzer
// accumulates, and E14 replays it inside the determinism gate.
func TestCorpusReplays(t *testing.T) {
	cases := Corpus()
	if len(cases) == 0 {
		t.Fatal("embedded corpus is empty")
	}
	for _, c := range cases {
		v := Run(c)
		if !v.OK() {
			t.Errorf("corpus case %s: %s", c.Name, v.Summary())
		}
	}
}

// FuzzFaultSchedule is the native fuzz target: the int64 input is a
// case seed, and the differential oracle is the property. `go test
// -fuzz FuzzFaultSchedule` explores schedule space; the committed
// corpus and CI run it for a bounded time as a smoke check.
func FuzzFaultSchedule(f *testing.F) {
	for seed := int64(1); seed <= 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := NewCase(seed)
		v := Run(c)
		if !v.OK() {
			t.Fatalf("differential invariant violated:\n%s\ncase: %s", v.Summary(), c)
		}
	})
}
