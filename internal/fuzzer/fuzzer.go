// Package fuzzer is the compositional fault-schedule fuzzer: it draws
// random but seed-reproducible fault schedules plus workload shapes,
// drives the same schedule through both TCP implementations, and
// asserts the cross-stack differential invariant — both stacks deliver
// exactly the bytes that were sent, no sublayer contract or watchdog
// violation fires, and the pooled and allocating tcpwire codecs agree
// on every wire crossing.
//
// The oracle is compositional in the paper's sense: the sublayered and
// monolithic TCPs are two decompositions of the same service, so any
// behavioral divergence under an identical failure history is a bug in
// one of them (or in a sublayer contract), not a matter of taste. The
// fuzzer only generates *healing* schedules (every fault bounded, total
// down time capped), which is what entitles it to demand completion —
// "did not finish" is then a differential signal, not noise.
//
// A failing case auto-shrinks (greedy delta debugging over fault
// steps, then magnitudes, then payload sizes) to a minimal reproducer
// that persists as a human-readable JSON corpus file; with tracing on,
// the failure also emits its causal chain and a pcapng capture via
// trace.Collector.
package fuzzer

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/faults"
)

// Case is one fuzz input: a seed-derived workload shape plus a fault
// schedule. Everything a run needs is in the Case, so a serialized
// Case is a complete reproducer.
type Case struct {
	Name string `json:"name"`
	// Seed drives the simulated world (link RNG), the injector RNG and
	// the payload bytes. Both stacks run under the same seed, so they
	// see the identical failure history.
	Seed int64 `json:"seed"`
	// C2S/S2C are the transfer sizes in bytes, client→server and back.
	C2S int `json:"c2s"`
	S2C int `json:"s2c"`
	// Hosts is the line-topology length (end hosts at 1 and Hosts).
	Hosts int `json:"hosts"`
	// Script is the fault schedule, serialized in the faults package's
	// human-readable JSON form.
	Script faults.Script `json:"script"`
}

// Steps returns the number of fault events in the schedule.
func (c Case) Steps() int { return len(c.Script.Steps) }

// String renders the case for logs.
func (c Case) String() string {
	return fmt.Sprintf("%s: seed=%d c2s=%d s2c=%d %v", c.Name, c.Seed, c.C2S, c.S2C, c.Script)
}

// GenDefaults is the schedule-generation envelope every fuzz case uses:
// the harness 4-host line, faults starting after the handshake window,
// bounded durations and a capped down budget — the "healing" envelope
// under which both transports owe a completed transfer. MaxAt is pulled
// in to 1.5s (from the generator's 4.2s default) so fault windows land
// while the transfer is actually in flight at the fuzz link rate:
// a fault that fires after the last byte tests nothing.
func GenDefaults() faults.GenConfig {
	return faults.GenConfig{MaxAt: 1500 * time.Millisecond}
}

// NewCase derives a complete fuzz case from one seed. Same seed, same
// case — a reproducer is just the seed, and the corpus file is only a
// convenience (plus the shrunk form, which no seed generates).
func NewCase(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	cfg := GenDefaults().WithDefaults()
	script := faults.GenScript(rng, cfg)
	script.Name = fmt.Sprintf("fuzz-%d", seed)
	return Case{
		Name:   fmt.Sprintf("seed-%d", seed),
		Seed:   seed,
		C2S:    20_000 + rng.Intn(130_000),
		S2C:    10_000 + rng.Intn(70_000),
		Hosts:  cfg.Hosts,
		Script: script,
	}
}

// payload derives the deterministic transfer bytes for one direction.
func payload(n int, seed int64) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

// MarshalIndent renders the case as the canonical reproducer file.
func (c Case) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseCase loads a reproducer produced by MarshalIndent. The embedded
// script re-validates on decode, so a hand-edited file fails loudly.
func ParseCase(b []byte) (Case, error) {
	var c Case
	if err := json.Unmarshal(b, &c); err != nil {
		return Case{}, err
	}
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.C2S <= 0 || c.S2C <= 0 {
		return Case{}, fmt.Errorf("fuzzer: case %q: non-positive transfer size", c.Name)
	}
	return c, nil
}
