package fuzzer

import (
	"time"

	"repro/internal/faults"
)

// Shrinking: delta debugging over the fault schedule, then magnitudes.
//
// A fresh failing case typically carries several fault steps, most of
// them bystanders. The shrinker first greedily removes whole steps
// (re-running the differential oracle after each candidate removal and
// keeping any removal that still fails), then shrinks magnitudes —
// fault durations, start offsets toward the schedule origin, payload
// sizes — and finally re-verifies the survivor. Every candidate is a
// full deterministic re-run, so the minimal reproducer is guaranteed
// to still fail, not merely suspected to.

// ShrinkResult is the outcome of a shrink campaign.
type ShrinkResult struct {
	// Case is the minimal failing reproducer found within budget.
	Case Case
	// Verdict is the re-run verdict of the minimal case.
	Verdict *Verdict
	// Runs counts oracle executions spent (≤ budget).
	Runs int
}

// RunFunc executes the oracle on a candidate; Shrink re-runs through
// it so tests can substitute instrumented runners.
type RunFunc func(Case) *Verdict

// Shrink minimizes a failing case. run must fail on c (the caller has
// already observed that); budget bounds the number of candidate
// re-runs. The returned case is renamed "<name>-shrunk" so artifacts
// from before and after minimization stay distinguishable.
func Shrink(c Case, run RunFunc, budget int) ShrinkResult {
	if budget <= 0 {
		budget = 64
	}
	runs := 0
	fails := func(cand Case) bool {
		if runs >= budget {
			return false // out of budget: treat as "can't confirm", keep current
		}
		runs++
		return !run(cand).OK()
	}

	// Phase 1: greedy step removal to fixpoint. With the generator's
	// small schedules (≤ ~8 steps) single-step removal converges fast;
	// restart after every success so later steps get re-tried against
	// the smaller schedule.
	cur := c
	for removed := true; removed && len(cur.Script.Steps) > 1; {
		removed = false
		for i := 0; i < len(cur.Script.Steps); i++ {
			cand := cur
			cand.Script = dropStep(cur.Script, i)
			if fails(cand) {
				cur = cand
				removed = true
				break
			}
		}
	}

	// Phase 2: magnitude shrinking — halve durations, pull start times
	// toward the 200ms handshake boundary, halve payloads. Each knob is
	// tried independently and kept only if the case still fails.
	for i := range cur.Script.Steps {
		for pass := 0; pass < 4; pass++ {
			st := cur.Script.Steps[i]
			if st.For >= 200*time.Millisecond {
				cand := cur
				cand.Script = withStep(cur.Script, i, func(s *faults.Step) { s.For /= 2 })
				if fails(cand) {
					cur = cand
					continue
				}
			}
			if st.At > 400*time.Millisecond {
				cand := cur
				cand.Script = withStep(cur.Script, i, func(s *faults.Step) {
					s.At = 200*time.Millisecond + (s.At-200*time.Millisecond)/2
				})
				if fails(cand) {
					cur = cand
					continue
				}
			}
			break
		}
	}
	for _, half := range []func(*Case){
		func(c *Case) { c.C2S /= 2 },
		func(c *Case) { c.S2C /= 2 },
	} {
		for pass := 0; pass < 3; pass++ {
			cand := cur
			half(&cand)
			if cand.C2S < 2_000 || cand.S2C < 1_000 {
				break
			}
			if !fails(cand) {
				break
			}
			cur = cand
		}
	}

	cur.Name = c.Name + "-shrunk"
	cur.Script.Name = c.Script.Name + "-shrunk"
	final := run(cur)
	runs++
	return ShrinkResult{Case: cur, Verdict: final, Runs: runs}
}

func dropStep(s faults.Script, i int) faults.Script {
	out := faults.Script{Name: s.Name, Steps: make([]faults.Step, 0, len(s.Steps)-1)}
	out.Steps = append(out.Steps, s.Steps[:i]...)
	out.Steps = append(out.Steps, s.Steps[i+1:]...)
	return out
}

func withStep(s faults.Script, i int, f func(*faults.Step)) faults.Script {
	out := faults.Script{Name: s.Name, Steps: append([]faults.Step(nil), s.Steps...)}
	f(&out.Steps[i])
	return out
}
