package fuzzer

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/backends"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/trace"
	"repro/internal/transport/harness"
	"repro/internal/verify"
)

// Budget is the virtual-time allowance per stack run: generous against
// the worst healing schedule (last fault ends ≈ 7s in, distance-vector
// reconvergence adds ≈ 5s, the transfer itself is sub-second at the
// fuzz link rate) yet bounded so a wedged transport cannot hang a fuzz
// campaign.
const Budget = 60 * time.Second

// fuzzLink is the link every fuzz world uses — the E10 chaos-soak
// shape but rate-limited harder (1 Mb/s), so even the smaller fuzz
// transfers are still in flight when the schedule's fault windows
// open; a connectivity fault then stalls the transfer across any later
// windows, keeping the whole schedule in play.
func fuzzLink() netsim.LinkConfig {
	return netsim.LinkConfig{Delay: 2 * time.Millisecond, RateBps: 1_000_000, QueueLimit: 64}
}

// StackRun is one stack's observed behavior under the case's schedule.
type StackRun struct {
	Stack      string   `json:"stack"`
	Completed  bool     `json:"completed"`
	Violations []string `json:"violations,omitempty"`
	CodecIssue []string `json:"codec_issues,omitempty"`
	FramesSeen uint64   `json:"frames_checked"`
	Elapsed    string   `json:"elapsed"`
	Err        string   `json:"err,omitempty"`

	serverGot, clientGot []byte
}

// Verdict is the differential oracle's judgment of one case.
type Verdict struct {
	Case     Case       `json:"case"`
	Stacks   []StackRun `json:"stacks"`
	Failures []string   `json:"failures,omitempty"`
}

// OK reports whether every invariant held.
func (v *Verdict) OK() bool { return len(v.Failures) == 0 }

// Summary renders the verdict in one line.
func (v *Verdict) Summary() string {
	if v.OK() {
		return fmt.Sprintf("%s: ok (%d fault steps)", v.Case.Name, v.Case.Steps())
	}
	return fmt.Sprintf("%s: FAIL %v", v.Case.Name, v.Failures)
}

// Artifacts configures the evidence a traced run leaves behind.
type Artifacts struct {
	// Dir receives "<label>-<stack>.trace.json" flight-recorder dumps
	// and "<label>-<stack>.pcapng" captures for each stack's run.
	Dir string
	// Label names the artifact files; it should identify the shrink
	// round ("seed-17" for the original, "seed-17-shrunk" after
	// shrinking) so a campaign's evidence trail reads in order.
	Label string
}

// Run executes the differential oracle on one case: the identical
// schedule, seed and payloads through the sublayered-native and
// monolithic stacks, codec equivalence checked on every wire crossing.
func Run(c Case) *Verdict { return run(c, nil) }

// RunTraced is Run with the flight recorder attached: each stack's run
// records causal chains, a failing invariant triggers a flight dump,
// and the whole recording plus a pcapng capture land under a.Dir.
func RunTraced(c Case, a Artifacts) *Verdict { return run(c, &a) }

func run(c Case, art *Artifacts) *Verdict {
	v := &Verdict{Case: c}
	kinds := []harness.Kind{harness.KindSublayeredNative, harness.KindMonolithic}
	for _, kind := range kinds {
		v.Stacks = append(v.Stacks, runStack(c, kind, art))
	}
	sub, mono := &v.Stacks[0], &v.Stacks[1]
	for i := range v.Stacks {
		s := &v.Stacks[i]
		if s.Err != "" {
			v.Failures = append(v.Failures, fmt.Sprintf("%s: %s", s.Stack, s.Err))
		}
		for _, viol := range s.Violations {
			v.Failures = append(v.Failures, fmt.Sprintf("%s: %s", s.Stack, viol))
		}
		for _, ci := range s.CodecIssue {
			v.Failures = append(v.Failures, fmt.Sprintf("%s: codec: %s", s.Stack, ci))
		}
	}
	if sub.Completed != mono.Completed {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"completion diverges under identical schedule: sublayered=%v monolithic=%v",
			sub.Completed, mono.Completed))
	}
	if !bytes.Equal(sub.serverGot, mono.serverGot) {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"c2s delivered streams diverge across stacks (%d vs %d bytes)",
			len(sub.serverGot), len(mono.serverGot)))
	}
	if !bytes.Equal(sub.clientGot, mono.clientGot) {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"s2c delivered streams diverge across stacks (%d vs %d bytes)",
			len(sub.clientGot), len(mono.clientGot)))
	}
	return v
}

// runStack drives one stack through the case. Both stacks get the same
// world seed, injector seed and payload bytes, so the failure history
// each experiences is event-for-event identical.
func runStack(c Case, kind harness.Kind, art *Artifacts) StackRun {
	out := StackRun{Stack: kind.String()}
	wcfg := harness.WorldConfig{
		Seed: c.Seed,
		// Pinned to the sequential simulator: the differential oracle
		// replays serialized codec traces, which a sharded world would
		// interleave differently per shard count.
		Backend: backends.Sim,
		Link:    fuzzLink(),
		Hops:    c.Hosts,
		Client:  kind,
		Server:  kind,
	}
	var contracts *verify.Checker
	if kind != harness.KindMonolithic {
		contracts = verify.NewChecker(verify.ModeRecord)
		wcfg.SubCfg.Contracts = contracts
	}
	w := harness.BuildWorld(wcfg)

	// Codec oracle: bare tracer normally; full collector with a pcap
	// writer behind it when artifacts are requested.
	codec := &codecTracer{}
	var col *trace.Collector
	var capture bytes.Buffer
	if art != nil {
		col = trace.NewCollector(trace.Options{RingCap: 2048, DoneCap: 256})
		col.Label = fmt.Sprintf("%s-%s", art.Label, kind)
		if pw, err := pcap.NewWriter(&capture); err == nil {
			col.CaptureTo(pw)
		}
		inner := col.OnFrame
		col.OnFrame = func(ev netsim.TraceEvent, frame []byte) {
			codec.Emit(ev, frame)
			if inner != nil {
				inner(ev, frame)
			}
		}
		w.Sim.SetTracer(col)
	} else {
		w.Sim.SetTracer(codec)
	}

	inj := faults.New(w.Sim, w.Topo, c.Seed+1_000_003)
	if err := inj.Apply(c.Script); err != nil {
		out.Err = fmt.Sprintf("schedule rejected: %v", err)
		return out
	}

	c2s := payload(c.C2S, c.Seed)
	s2c := payload(c.S2C, c.Seed+500)
	wd := faults.NewWatchdog()
	r, err := harness.RunTransfer(w, c2s, s2c, Budget)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.serverGot, out.clientGot = r.ServerGot, r.ClientGot
	out.Completed = bytes.Equal(r.ServerGot, c2s) && bytes.Equal(r.ClientGot, s2c)
	out.Elapsed = r.Elapsed.Truncate(time.Millisecond).String()

	// Healing schedule ⇒ completion is owed, in both directions.
	wd.CheckComplete("c2s", c2s, r.ServerGot)
	wd.CheckComplete("s2c", s2c, r.ClientGot)
	if contracts != nil {
		wd.CheckContracts("contracts", contracts)
	}
	out.Violations = wd.Violations()
	out.CodecIssue = codec.issues
	out.FramesSeen = codec.checked

	if col != nil {
		for _, viol := range out.Violations {
			col.NoteViolation(w.Sim.Now(), "fuzzer", viol, 0)
		}
		for _, ci := range out.CodecIssue {
			col.NoteViolation(w.Sim.Now(), "fuzzer", "codec: "+ci, 0)
		}
		name := fmt.Sprintf("%s-%s", art.Label, kind)
		writeDump(art.Dir, name+".trace.json", col)
		if capture.Len() > 0 {
			writeFile(art.Dir, name+".pcapng", capture.Bytes())
		}
	}
	return out
}
