package fuzzer

import (
	"bytes"
	"fmt"
	"reflect"

	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/tcpwire"
)

// Codec-equivalence oracle.
//
// tcpwire keeps two codec paths per wire format: the allocating one
// (Marshal / UnmarshalTCP / UnmarshalSub) and the pooled zero-copy one
// (MarshalTo+WireLen / UnmarshalTCPInto / UnmarshalSubInto). The repo
// already fuzzes them on synthetic inputs; here they are checked on
// every *live* wire crossing of every fuzz run, Leapfrog-style: for
// each transmitted frame both decoders must agree (same error verdict,
// same header, same payload), and re-encoding the decoded form through
// both encoders must reproduce the original wire bytes exactly. Any
// disagreement means one codec path lies about what the stack put on
// the wire — precisely the divergence pooled buffer reuse can smuggle
// past unit tests.

// CheckFrame runs the codec-equivalence oracle on one link-level frame.
// Control-plane frames (hello, routing) and non-TCP datagrams are not a
// codec question and pass vacuously. A nil return means the codecs
// agree on this frame.
func CheckFrame(frame []byte) error {
	if len(frame) == 0 || frame[0] != 0 {
		return nil // control plane
	}
	dg, err := network.UnmarshalDatagram(frame)
	if err != nil {
		return nil // malformed datagram: the network layer's problem
	}
	switch dg.Proto {
	case network.ProtoTCP:
		return checkTCP(dg)
	case network.ProtoSubTCP:
		return checkSub(dg)
	default:
		return nil
	}
}

func checkTCP(dg *network.Datagram) error {
	src, dst := uint16(dg.Src), uint16(dg.Dst)
	h1, p1, err1 := tcpwire.UnmarshalTCP(dg.Payload, src, dst)
	var h2 tcpwire.TCPHeader
	p2, err2 := tcpwire.UnmarshalTCPInto(&h2, dg.Payload, src, dst)
	if (err1 == nil) != (err2 == nil) {
		return fmt.Errorf("tcp decode verdicts diverge: alloc=%v pooled=%v", err1, err2)
	}
	if err1 != nil {
		return nil // both reject: agreement
	}
	if !reflect.DeepEqual(*h1, h2) {
		return fmt.Errorf("tcp headers diverge: alloc=%+v pooled=%+v", *h1, h2)
	}
	if !bytes.Equal(p1, p2) {
		return fmt.Errorf("tcp payloads diverge (%d vs %d bytes)", len(p1), len(p2))
	}
	m1 := h1.Marshal(p1, src, dst)
	m2 := make([]byte, h2.WireLen(len(p2)))
	h2.MarshalTo(m2, p2, src, dst)
	if !bytes.Equal(m1, m2) {
		return fmt.Errorf("tcp encoders diverge on re-encode")
	}
	if !bytes.Equal(m1, dg.Payload) {
		return fmt.Errorf("tcp decode/encode round trip changed the wire bytes (%d vs %d)", len(m1), len(dg.Payload))
	}
	return nil
}

func checkSub(dg *network.Datagram) error {
	h1, p1, err1 := tcpwire.UnmarshalSub(dg.Payload)
	var h2 tcpwire.SubHeader
	p2, err2 := tcpwire.UnmarshalSubInto(&h2, dg.Payload)
	if (err1 == nil) != (err2 == nil) {
		return fmt.Errorf("subtcp decode verdicts diverge: alloc=%v pooled=%v", err1, err2)
	}
	if err1 != nil {
		return nil
	}
	if !reflect.DeepEqual(*h1, h2) {
		return fmt.Errorf("subtcp headers diverge: alloc=%+v pooled=%+v", *h1, h2)
	}
	if !bytes.Equal(p1, p2) {
		return fmt.Errorf("subtcp payloads diverge (%d vs %d bytes)", len(p1), len(p2))
	}
	m1 := h1.Marshal(p1)
	m2 := make([]byte, h2.WireLen(len(p2)))
	h2.MarshalTo(m2, p2)
	if !bytes.Equal(m1, m2) {
		return fmt.Errorf("subtcp encoders diverge on re-encode")
	}
	if !bytes.Equal(m1, dg.Payload) {
		return fmt.Errorf("subtcp decode/encode round trip changed the wire bytes (%d vs %d)", len(m1), len(dg.Payload))
	}
	return nil
}

// codecTracer is the bare-mode netsim.Tracer: it ignores causal
// tracking entirely and runs CheckFrame on every frame-carrying event,
// retaining the first few disagreements. Attaching it is observational
// — it consumes no randomness and schedules nothing — so it cannot
// change packet outcomes.
type codecTracer struct {
	checked uint64
	issues  []string
}

const maxCodecIssues = 8

func (t *codecTracer) note(ev netsim.TraceEvent, err error) {
	if len(t.issues) < maxCodecIssues {
		t.issues = append(t.issues, fmt.Sprintf("at=%v node=%s kind=%s: %v", ev.At, ev.Node, ev.Kind, err))
	}
}

// Stamp implements netsim.Tracer.
func (t *codecTracer) Stamp([]byte) uint64 { return 0 }

// ID implements netsim.Tracer.
func (t *codecTracer) ID([]byte) uint64 { return 0 }

// Retire implements netsim.Tracer.
func (t *codecTracer) Retire([]byte) {}

// Emit implements netsim.Tracer.
func (t *codecTracer) Emit(ev netsim.TraceEvent, frame []byte) {
	if frame == nil || ev.Kind == "corrupt" {
		return // corrupted bits are the link's doing, not a codec's
	}
	t.checked++
	if err := CheckFrame(frame); err != nil {
		t.note(ev, err)
	}
}
