package fuzzer

import (
	"bytes"
	"embed"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/trace"
)

// corpusFS embeds the committed reproducer corpus, so corpus replay
// (experiment E14, the fuzz seed set) is path-independent: it works
// from `go test` in any package directory and from the installed
// binaries alike.
//
//go:embed corpus/*.json
var corpusFS embed.FS

// Corpus loads the embedded reproducer corpus in file-name order.
// The files are committed artifacts; a corrupt one is a build problem,
// so load failures panic rather than silently shrinking the corpus.
func Corpus() []Case {
	entries, err := fs.ReadDir(corpusFS, "corpus")
	if err != nil {
		panic(fmt.Sprintf("fuzzer: embedded corpus unreadable: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	out := make([]Case, 0, len(names))
	for _, n := range names {
		b, err := fs.ReadFile(corpusFS, "corpus/"+n)
		if err != nil {
			panic(fmt.Sprintf("fuzzer: corpus %s: %v", n, err))
		}
		c, err := ParseCase(b)
		if err != nil {
			panic(fmt.Sprintf("fuzzer: corpus %s: %v", n, err))
		}
		out = append(out, c)
	}
	return out
}

// SaveCase persists a reproducer as "<name>.json" under dir, creating
// the directory as needed. It returns the written path.
func SaveCase(dir string, c Case) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := c.MarshalIndent()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, c.Name+".json")
	return path, os.WriteFile(path, b, 0o644)
}

// LoadCase reads a reproducer file from disk.
func LoadCase(path string) (Case, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Case{}, err
	}
	return ParseCase(b)
}

// writeDump serializes a collector's report under dir; best-effort
// like the experiments' trace artifacts — an unwritable artifact
// directory must not turn a fuzz verdict into an error.
func writeDump(dir, name string, col *trace.Collector) {
	var b bytes.Buffer
	if err := col.WriteJSON(&b); err != nil {
		return
	}
	writeFile(dir, name, b.Bytes())
}

func writeFile(dir, name string, data []byte) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	_ = os.WriteFile(filepath.Join(dir, name), data, 0o644)
}
