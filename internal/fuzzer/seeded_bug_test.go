package fuzzer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/transport/sublayered"
)

// TestSeededBugFoundAndShrunk is the end-to-end proof the fuzzer earns
// its keep: plant a classic off-by-one in the sublayered retransmit
// path (via the test hook — retransmissions claim seq+1), and the
// differential oracle must (a) find a failing schedule within a small
// seed budget, (b) shrink it to a handful of fault events that still
// reproduce, and (c) leave a flight-recorder dump plus a pcapng
// capture behind as evidence. The monolithic stack is unaffected, so
// the failure shows up as completion divergence — exactly the signal a
// cross-stack oracle exists to produce.
func TestSeededBugFoundAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world fuzz campaign")
	}
	sublayered.FaultRexmitOffset = 1
	defer func() { sublayered.FaultRexmitOffset = 0 }()

	// (a) Find: scan seeds until a schedule provokes a retransmission
	// of a lost first copy. Most lossy schedules do.
	var failing *Verdict
	var found Case
	for seed := int64(1); seed <= 30; seed++ {
		c := NewCase(seed)
		if v := Run(c); !v.OK() {
			failing, found = v, c
			break
		}
	}
	if failing == nil {
		t.Fatal("seeded retransmit bug not found in 30 seeds")
	}
	t.Logf("found: %s", failing.Summary())

	// The bug must read as a sublayered-vs-monolithic divergence, not
	// as a monolithic failure.
	for _, s := range failing.Stacks {
		if s.Stack == "monolithic" && (len(s.Violations) > 0 || !s.Completed) {
			t.Errorf("monolithic stack affected by a sublayered-only bug: %+v", s.Violations)
		}
	}

	// (b) Shrink to a minimal reproducer: at most 5 fault events and
	// still failing.
	sr := Shrink(found, Run, 80)
	if sr.Verdict.OK() {
		t.Fatal("shrunk case no longer fails")
	}
	if got := sr.Case.Steps(); got > 5 {
		t.Errorf("shrunk to %d fault events, want ≤ 5 (script: %v)", got, sr.Case.Script)
	}
	if sr.Case.Steps() >= found.Steps() && found.Steps() > 1 {
		t.Errorf("shrinker removed nothing: %d → %d steps", found.Steps(), sr.Case.Steps())
	}
	t.Logf("shrunk: %d → %d steps in %d runs", found.Steps(), sr.Case.Steps(), sr.Runs)

	// The reproducer round-trips through its corpus file and still
	// fails when loaded back.
	dir := t.TempDir()
	path, err := SaveCase(dir, sr.Case)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := Run(loaded); v.OK() {
		t.Error("reproducer loaded from disk no longer fails")
	}

	// (c) Evidence: the traced re-run leaves a causal-chain dump (with
	// a violation flight dump inside) and a pcapng capture per stack.
	artDir := t.TempDir()
	RunTraced(sr.Case, Artifacts{Dir: artDir, Label: sr.Case.Name})
	dump := filepath.Join(artDir, sr.Case.Name+"-sublayered.trace.json")
	b, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("no flight-recorder dump: %v", err)
	}
	for _, want := range []string{`"label"`, `"dumps"`, `"violation"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("dump %s lacks %s", dump, want)
		}
	}
	capture := filepath.Join(artDir, sr.Case.Name+"-sublayered.pcapng")
	if fi, err := os.Stat(capture); err != nil || fi.Size() == 0 {
		t.Errorf("no pcapng capture at %s: %v", capture, err)
	}
}
