package repro

// One benchmark per experiment in DESIGN.md's index (E1–E11). Each
// regenerates its table through internal/experiments — the same code
// path as cmd/benchreport — so `go test -bench=. -benchtime=1x` is a
// full reproduction run, and the b.N loop measures the end-to-end cost
// of the experiment itself. The E7 trio additionally measures the
// CPU cost per transferred megabyte of each TCP implementation, which
// is the quantitative answer to §3.1's performance objection.

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/datalink"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/stuffing"
	"repro/internal/transport/harness"
	"repro/internal/transport/sublayered"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.ByID(id, 1)
		if r == nil || len(r.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// BenchmarkE1DataLinkStack regenerates the Fig. 2 replacement table.
func BenchmarkE1DataLinkStack(b *testing.B) { benchExperiment(b, "e1") }

// BenchmarkE2Routing regenerates the DV/LS convergence and live-swap
// table.
func BenchmarkE2Routing(b *testing.B) { benchExperiment(b, "e2") }

// BenchmarkE3SublayeredTCP regenerates the loss-sweep stream-integrity
// table.
func BenchmarkE3SublayeredTCP(b *testing.B) { benchExperiment(b, "e3") }

// BenchmarkE4Interop regenerates the 2×2 interop matrix.
func BenchmarkE4Interop(b *testing.B) { benchExperiment(b, "e4") }

// BenchmarkE5Stuffing regenerates the rule-library and overhead table.
func BenchmarkE5Stuffing(b *testing.B) { benchExperiment(b, "e5") }

// BenchmarkE5RuleLibrary measures the decision procedure over the full
// 8-bit-flag candidate family (the "Coq proof" replacement).
func BenchmarkE5RuleLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(stuffing.Library(8)) == 0 {
			b.Fatal("empty library")
		}
	}
}

// BenchmarkE6Entanglement regenerates the instrumented entanglement
// comparison.
func BenchmarkE6Entanglement(b *testing.B) { benchExperiment(b, "e6") }

// benchTransfer measures the CPU cost of moving 1 MB through a given
// pairing on a clean two-hop path.
func benchTransfer(b *testing.B, client, server harness.Kind) {
	b.Helper()
	data := make([]byte, 1_000_000)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := harness.BuildWorld(harness.WorldConfig{
			Seed: 1, Link: netsim.LinkConfig{Delay: time.Millisecond},
			Client: client, Server: server,
		})
		res, err := harness.RunTransfer(w, data, nil, time.Hour)
		if err != nil || !bytes.Equal(res.ServerGot, data) {
			b.Fatal("transfer failed")
		}
	}
}

// BenchmarkE7PerformanceMonolithic: baseline CPU cost per MB.
func BenchmarkE7PerformanceMonolithic(b *testing.B) {
	benchTransfer(b, harness.KindMonolithic, harness.KindMonolithic)
}

// BenchmarkE7PerformanceSublayered: the Fig. 5 stack, native header.
func BenchmarkE7PerformanceSublayered(b *testing.B) {
	benchTransfer(b, harness.KindSublayeredNative, harness.KindSublayeredNative)
}

// BenchmarkE7PerformanceShim: sublayered behind the §3.1 shim talking
// to the monolithic baseline — the interop configuration's cost.
func BenchmarkE7PerformanceShim(b *testing.B) {
	benchTransfer(b, harness.KindSublayeredShim, harness.KindMonolithic)
}

// BenchmarkE8Replace regenerates the CC × CM swap matrix.
func BenchmarkE8Replace(b *testing.B) { benchExperiment(b, "e8") }

// BenchmarkE9Offload regenerates the hardware-partition table.
func BenchmarkE9Offload(b *testing.B) { benchExperiment(b, "e9") }

// BenchmarkE10ChaosSoak regenerates the fault-matrix soak: both stacks
// through bursty loss, flaps, partitions, a router crash-restart, a
// blackhole, and the permanent partition that trips the user timeout.
func BenchmarkE10ChaosSoak(b *testing.B) { benchExperiment(b, "e10") }

// BenchmarkE11FlowScaling regenerates the many-flow scaling matrix
// (10/100/1000 flows × both stacks through the workload engine).
func BenchmarkE11FlowScaling(b *testing.B) { benchExperiment(b, "e11") }

// BenchmarkE11Workload1000 measures the engine alone at the E11
// ceiling: one 1,000-flow simulation, both payload directions counted.
func BenchmarkE11Workload1000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := workload.Run(workload.Config{Seed: 1, Flows: 1000})
		if r.Completed != 1000 || len(r.Violations) != 0 {
			b.Fatalf("completed=%d violations=%d", r.Completed, len(r.Violations))
		}
	}
}

// BenchmarkE12CCBakeoff regenerates the congestion-control bake-off:
// both stacks × {newreno, cubic, bbrlite} × {clean, random-loss,
// bursty} through the ccontrol registry.
func BenchmarkE12CCBakeoff(b *testing.B) { benchExperiment(b, "e12") }

// --- ablation benches for DESIGN.md's called-out choices ---

// BenchmarkAblationDelayedAcks measures the challenge-3 tune: ack
// thinning's effect on total work for a clean 1 MB transfer.
func BenchmarkAblationDelayedAcks(b *testing.B) {
	for _, delayed := range []bool{false, true} {
		name := "ack-every-segment"
		if delayed {
			name = "delayed-acks"
		}
		b.Run(name, func(b *testing.B) {
			data := make([]byte, 1_000_000)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := harness.BuildWorld(harness.WorldConfig{
					Seed: 1, Link: netsim.LinkConfig{Delay: time.Millisecond},
					Client: harness.KindSublayeredNative, Server: harness.KindSublayeredNative,
					SubCfg: sublayered.Config{DelayedAcks: delayed},
				})
				res, err := harness.RunTransfer(w, data, nil, time.Hour)
				if err != nil || len(res.ServerGot) != len(data) {
					b.Fatal("transfer failed")
				}
			}
		})
	}
}

// BenchmarkAblationSACK measures selective acknowledgements' value on
// a lossy path (native mode).
func BenchmarkAblationSACK(b *testing.B) {
	for _, sack := range []bool{false, true} {
		name := "cumulative-only"
		if sack {
			name = "with-sack"
		}
		b.Run(name, func(b *testing.B) {
			data := make([]byte, 300_000)
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				w := harness.BuildWorld(harness.WorldConfig{
					Seed: 1, Link: netsim.LinkConfig{Delay: 2 * time.Millisecond, LossProb: 0.05},
					Client: harness.KindSublayeredNative, Server: harness.KindSublayeredNative,
					SubCfg: sublayered.Config{NativeSACK: sack},
				})
				res, err := harness.RunTransfer(w, data, nil, time.Hour)
				if err != nil || len(res.ServerGot) != len(data) {
					b.Fatal("transfer failed")
				}
			}
		})
	}
}

// BenchmarkAblationNestedFraming compares the recursive two-sublayer
// framing against the monolithic framer (the cost of literal
// recursion).
func BenchmarkAblationNestedFraming(b *testing.B) {
	pkt := make([]byte, 512)
	for _, nested := range []bool{false, true} {
		name := "monolithic-framer"
		fr := func() datalink.Framer { return datalink.NewBitStuffFramer(stuffing.HDLC()) }
		if nested {
			name = "nested-framer"
			fr = func() datalink.Framer { return datalink.NewNestedFramer(stuffing.HDLC()) }
		}
		b.Run(name, func(b *testing.B) {
			f := fr()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bits, err := f.Frame(pkt)
				if err != nil {
					b.Fatal(err)
				}
				if got := f.Deframe(bits); len(got) != 1 {
					b.Fatal("deframe failed")
				}
			}
		})
	}
}

// BenchmarkE13Overlay regenerates the application-layer overlay
// matrix: RPC, DHT and gossip tiers on both stacks under the cluster
// fault scenarios.
func BenchmarkE13Overlay(b *testing.B) { benchExperiment(b, "e13") }

// BenchmarkE14CorpusReplay regenerates the fault-schedule fuzz corpus
// replay: every committed reproducer plus two fresh schedules through
// the cross-stack differential oracle.
func BenchmarkE14CorpusReplay(b *testing.B) { benchExperiment(b, "e14") }
